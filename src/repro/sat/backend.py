"""Pluggable SAT oracle backends behind one incremental protocol.

Every oracle consumer in the repo — the persistent sessions in
:mod:`repro.core.sessions`, the Tseitin :class:`~repro.formula.tseitin.
SolverSink`, the sampler, and model enumeration — talks to the solver
through the same narrow surface.  :class:`SatBackend` names that
surface explicitly so the pure-Python CDCL can be swapped for a native
solver without touching the synthesis loop:

``ensure_vars`` / ``reserve_var``
    Grow the variable space; auxiliary (Tseitin, selector) variables are
    allocated from the same space, after the problem variables.
``add_clause(lits, group=None)`` / ``add_cnf(cnf, group=None)``
    Load clauses, optionally guarded by a clause group.
``new_group`` / ``release_group``
    MiniSat-style retractable clause groups: a group's clauses
    constrain every ``solve`` until the group is released, and a
    release is permanent and idempotent.  Problem variables must be
    reserved *before* opening groups; a clause that references a group
    selector is rejected.
``solve(assumptions=, conflict_budget=, deadline=)``
    Returns ``SAT``/``UNSAT``/``UNKNOWN``.  Selectors of live groups
    are assumed automatically, before the caller's assumptions, and
    never escape: ``model`` (a ``{var: bool}`` dict over the full
    variable space) and ``core`` (a subset of the caller's assumptions
    sufficient for UNSAT; ``[]`` when the formula is unconditionally
    UNSAT) are both selector-free.
``stats()``
    The oracle counters the engine reports under ``stats["oracle"]``:
    ``conflicts``/``decisions``/``propagations``/``restarts``.  Going
    through the protocol (not private solver attributes) is what keeps
    an alternative backend from silently reporting zeros.

Three backends are registered:

* ``python`` — :class:`PythonBackend`, the repo's own CDCL
  (:class:`~repro.sat.solver.Solver`).  The reference implementation
  and the default; every environment has it.
* ``python-emulated`` — the same CDCL, but with clause groups provided
  by the *generic selector-literal emulation layer*
  (:class:`GroupEmulationBackend`) instead of the solver's native group
  machinery.  This is the exact group strategy a group-less native
  solver needs, kept runnable everywhere so the tier-1 differential and
  trajectory suites pin its semantics against the reference even when
  no native solver is installed.
* ``pysat`` — :class:`PySATBackend`, the optional `python-sat`_ bridge
  (guarded import): native assumptions and cores, clause groups through
  the same emulation layer.  ``pysat:<solver>`` selects a specific
  PySAT engine (e.g. ``pysat:minisat22``); plain ``pysat`` means
  ``pysat:glucose3``.

A fourth registered name, ``faulty:<inner>``, wraps any of the above in
the deterministic fault injector of :mod:`repro.sat.faults` (driven by
a seeded :class:`~repro.sat.faults.FaultPlan`, spec'd via the
``REPRO_FAULT_PLAN`` environment variable).  With no plan configured it
is a pure passthrough, which the differential suite pins bit-identical
to the wrapped backend.

.. _python-sat: https://pysathq.github.io/

Backends differ in *which* model or core they return and in how much
work a budgeted call performs, but never in verdicts: the differential
harness (``tests/sat/test_backend_differential.py``) replays identical
incremental scripts against every installed backend and checks each
answer against the formula itself, and the trajectory suite
(``tests/core/test_backend_trajectory.py``) pins engine- and
campaign-level equivalence the same way ``manthan3-fresh`` and
``manthan3-rowwise`` are kept honest.
"""

from repro.sat.solver import SAT, UNSAT, UNKNOWN, Solver
from repro.utils.errors import ReproError

__all__ = [
    "BackendUnavailableError",
    "GroupEmulationBackend",
    "PySATBackend",
    "PythonBackend",
    "SatBackend",
    "available_backends",
    "backend_available",
    "backend_capabilities",
    "backend_names",
    "make_backend",
]


class BackendUnavailableError(ReproError):
    """The requested backend's native solver library is not installed."""


class SatBackend:
    """The incremental oracle protocol (see the module docstring).

    This base class documents the surface and supplies the shared
    pieces; conformance is duck-typed — :class:`PythonBackend` inherits
    the whole protocol from :class:`~repro.sat.solver.Solver` directly.

    Class attributes
    ----------------
    name:
        Registry name of the backend.
    capabilities:
        Feature tags consumers may probe before relying on optional
        behavior.  ``"weighted_polarity"`` marks backends that accept
        the sampler's randomized-branching knobs (``polarity_mode``,
        ``random_var_freq``, ``polarity_weights``, re-seedable
        ``rng``); the sampler falls back to the reference backend
        otherwise.
    """

    name = None
    capabilities = frozenset()

    def ensure_vars(self, n):
        raise NotImplementedError

    def reserve_var(self):
        raise NotImplementedError

    def add_clause(self, lits, group=None):
        raise NotImplementedError

    def add_cnf(self, cnf, group=None):
        """Load all clauses of a CNF; returns the backend's ``ok``."""
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            self.add_clause(clause, group=group)
        return self.ok

    def new_group(self):
        raise NotImplementedError

    def release_group(self, group):
        raise NotImplementedError

    def solve(self, assumptions=(), conflict_budget=None, deadline=None):
        raise NotImplementedError

    @property
    def model(self):
        raise NotImplementedError

    @property
    def core(self):
        raise NotImplementedError

    @property
    def ok(self):
        """``False`` once a root-level conflict is known (advisory:
        backends that cannot detect it eagerly stay ``True``)."""
        return True

    def stats(self):
        raise NotImplementedError


class PythonBackend(Solver):
    """The reference backend: the repo's own CDCL, native clause groups.

    A transparent subclass — constructing it is bit-for-bit identical
    to constructing :class:`~repro.sat.solver.Solver`, so the default
    configuration's trajectories are unchanged by the protocol
    extraction.
    """

    name = "python"
    capabilities = frozenset({"weighted_polarity"})


class GroupEmulationBackend(SatBackend):
    """Clause groups by selector-literal emulation over a raw core.

    The strategy MiniSat popularised and the native :class:`Solver`
    implements internally, lifted into a backend-agnostic layer: every
    group owns a fresh *selector* variable, clauses added to the group
    carry ``¬selector``, ``solve`` assumes the selectors of all live
    groups (sorted by group id, before the caller's assumptions), and
    releasing a group asserts the unit ``¬selector`` that permanently
    satisfies its clauses.  Models and cores are masked so selector
    variables never escape to callers.

    Subclasses provide the group-less core via ``_raw_*`` hooks:
    ``_raw_add_clause(lits)``, ``_raw_solve(assumptions,
    conflict_budget, deadline)``, ``_raw_model()`` and ``_raw_core()``,
    plus the protocol's variable management.
    """

    def __init__(self):
        self._group_selector = {}   # group id -> selector var
        self._selector_group = {}   # selector var -> group id
        self._released = set()
        self._next_group = 0
        self._model = None
        self._core = None

    # ------------------------------------------------------------------
    # raw-core hooks
    # ------------------------------------------------------------------
    def _raw_add_clause(self, lits):
        raise NotImplementedError

    def _raw_solve(self, assumptions, conflict_budget, deadline):
        raise NotImplementedError

    def _raw_model(self):
        raise NotImplementedError

    def _raw_core(self):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def add_clause(self, lits, group=None):
        lits = [int(l) for l in lits]
        if self._selector_group:
            for l in lits:
                if abs(l) in self._selector_group:
                    raise ReproError(
                        "literal %d references a group selector; reserve "
                        "problem variables before opening groups" % l)
        if group is not None:
            if group not in self._group_selector:
                raise ReproError("unknown clause group %r" % (group,))
            if group in self._released:
                raise ReproError("clause group %r is released" % (group,))
            lits = lits + [-self._group_selector[group]]
        return self._raw_add_clause(lits)

    def new_group(self):
        selector = self.reserve_var()
        group = self._next_group
        self._next_group += 1
        self._group_selector[group] = selector
        self._selector_group[selector] = group
        return group

    def release_group(self, group):
        if group not in self._group_selector:
            raise ReproError("unknown clause group %r" % (group,))
        if group in self._released:
            return
        self._released.add(group)
        self._raw_add_clause([-self._group_selector[group]])

    def solve(self, assumptions=(), conflict_budget=None, deadline=None):
        self._model = None
        self._core = None
        assumptions = [int(l) for l in assumptions]
        selectors = [self._group_selector[g]
                     for g in sorted(self._group_selector)
                     if g not in self._released]
        status = self._raw_solve(selectors + assumptions, conflict_budget,
                                 deadline)
        if status == SAT:
            model = self._raw_model()
            for l in assumptions:
                model.setdefault(abs(l), l > 0)
            self._model = {v: b for v, b in model.items()
                           if v not in self._selector_group}
        elif status == UNSAT:
            core = self._raw_core() or []
            self._core = [l for l in core
                          if abs(l) not in self._selector_group]
        return status

    @property
    def model(self):
        return self._model

    @property
    def core(self):
        return self._core


class EmulatedPythonBackend(GroupEmulationBackend):
    """The reference CDCL behind the generic group-emulation layer.

    Functionally interchangeable with :class:`PythonBackend` — the
    selector strategy is the one the native groups use internally, so
    the two produce the same verdicts, models, and cores call for call
    (the differential suite asserts this).  Exists so the emulation
    layer every native backend depends on is exercised by tier-1 in
    environments without any native solver installed.
    """

    name = "python-emulated"
    capabilities = frozenset({"weighted_polarity"})

    def __init__(self, cnf=None, rng=None, polarity_mode="saved",
                 random_var_freq=0.0, default_phase=False,
                 polarity_weights=None):
        super().__init__()
        self._inner = Solver(rng=rng, polarity_mode=polarity_mode,
                             random_var_freq=random_var_freq,
                             default_phase=default_phase,
                             polarity_weights=polarity_weights)
        if cnf is not None:
            self.add_cnf(cnf)

    def ensure_vars(self, n):
        self._inner.ensure_vars(n)

    def reserve_var(self):
        return self._inner.reserve_var()

    def _raw_add_clause(self, lits):
        return self._inner.add_clause(lits)

    def _raw_solve(self, assumptions, conflict_budget, deadline):
        return self._inner.solve(assumptions=assumptions,
                                 conflict_budget=conflict_budget,
                                 deadline=deadline)

    def _raw_model(self):
        return dict(self._inner.model)

    def _raw_core(self):
        return self._inner.core

    @property
    def ok(self):
        return self._inner.ok

    @property
    def num_vars(self):
        return self._inner.num_vars

    # The sampler's persistent mode re-seeds the solver RNG and
    # refreshes the polarity weights in place between draws.
    @property
    def rng(self):
        return self._inner.rng

    @rng.setter
    def rng(self, value):
        self._inner.rng = value

    @property
    def polarity_weights(self):
        return self._inner.polarity_weights

    def stats(self):
        return self._inner.stats()


class PySATBackend(GroupEmulationBackend):
    """Optional `python-sat` bridge: native assumptions and cores,
    groups through the emulation layer.

    ``rng`` is accepted for factory uniformity but unused — PySAT
    engines are deterministic and expose no polarity randomization,
    which is why this backend does not advertise
    ``"weighted_polarity"`` (the sampler keeps the reference solver).

    Budgets map to PySAT's budgeted interface: ``conflict_budget``
    becomes ``conf_budget`` + ``solve_limited``; a ``deadline`` arms a
    watchdog timer that calls ``interrupt()`` when the wall clock runs
    out.  Either exhaustion surfaces as ``UNKNOWN`` and the solver
    remains usable, matching the reference semantics.
    """

    name = "pysat"
    capabilities = frozenset()

    #: PySAT engine used when the backend is selected as plain "pysat".
    DEFAULT_SOLVER = "glucose3"

    def __init__(self, cnf=None, rng=None, solver_name=None):
        super().__init__()
        try:
            from pysat.solvers import Solver as _PySolver
        except ImportError:
            raise BackendUnavailableError(
                "the 'pysat' backend requires the python-sat package "
                "(pip install python-sat)")
        self.solver_name = solver_name or self.DEFAULT_SOLVER
        self._inner = _PySolver(name=self.solver_name)
        self._num_vars = 0
        self._ok = True
        if cnf is not None:
            self.add_cnf(cnf)

    def ensure_vars(self, n):
        if n > self._num_vars:
            self._num_vars = n

    def reserve_var(self):
        self._num_vars += 1
        return self._num_vars

    @property
    def num_vars(self):
        return self._num_vars

    @property
    def ok(self):
        return self._ok

    def _raw_add_clause(self, lits):
        for l in lits:
            self.ensure_vars(abs(l))
        if not lits:
            # Empty clause: not every PySAT engine accepts it literally;
            # a contradictory pair on a fresh variable is equivalent.
            v = self.reserve_var()
            self._inner.add_clause([v])
            self._inner.add_clause([-v])
            self._ok = False
            return False
        self._inner.add_clause(list(lits))
        return self._ok

    def _raw_solve(self, assumptions, conflict_budget, deadline):
        if deadline is not None and deadline.expired():
            return UNKNOWN
        timer = None
        if deadline is not None and deadline.remaining() is not None:
            import threading

            timer = threading.Timer(deadline.remaining(),
                                    self._inner.interrupt)
            timer.daemon = True
            timer.start()
        interruptible = timer is not None
        try:
            if conflict_budget is not None:
                self._inner.conf_budget(int(conflict_budget))
                verdict = self._inner.solve_limited(
                    assumptions=assumptions,
                    expect_interrupt=interruptible)
            elif interruptible:
                verdict = self._inner.solve_limited(
                    assumptions=assumptions, expect_interrupt=True)
            else:
                verdict = self._inner.solve(assumptions=assumptions)
        finally:
            if timer is not None:
                timer.cancel()
        if verdict is None:
            if interruptible:
                self._inner.clear_interrupt()
            return UNKNOWN
        return SAT if verdict else UNSAT

    def _raw_model(self):
        model = {abs(l): l > 0 for l in self._inner.get_model() or ()}
        for v in range(1, self._num_vars + 1):
            model.setdefault(v, False)
        return model

    def _raw_core(self):
        return self._inner.get_core()

    def stats(self):
        acc = self._inner.accum_stats() or {}
        return {
            "conflicts": int(acc.get("conflicts", 0)),
            "decisions": int(acc.get("decisions", 0)),
            "propagations": int(acc.get("propagations", 0)),
            "restarts": int(acc.get("restarts", 0)),
        }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY = {
    PythonBackend.name: PythonBackend,
    EmulatedPythonBackend.name: EmulatedPythonBackend,
    PySATBackend.name: PySATBackend,
}

#: The fault-injection wrapper lives in :mod:`repro.sat.faults`, which
#: imports this module — so it is resolved lazily, never at import time.
_FAULTY = "faulty"


def _split(name):
    """``"pysat:minisat22"`` -> ``("pysat", "minisat22")``."""
    base, _, variant = name.partition(":")
    return base, variant or None


def backend_names():
    """Registered backend names, sorted (availability not checked)."""
    return sorted(set(_REGISTRY) | {_FAULTY})


def backend_available(name):
    """Whether ``name`` can actually be constructed here."""
    base, variant = _split(name)
    if base == _FAULTY:
        # faulty:<inner> is available exactly when its inner backend is
        # (a bare "faulty" wraps the reference backend).
        return backend_available(variant or PythonBackend.name)
    if base not in _REGISTRY:
        return False
    if base == PySATBackend.name:
        try:
            import pysat.solvers  # noqa: F401
        except ImportError:
            return False
    return True


def available_backends():
    """The subset of :func:`backend_names` constructible right now."""
    return [name for name in backend_names() if backend_available(name)]


def backend_capabilities(name):
    """Capability tags of a registered backend (by base name)."""
    base, variant = _split(name)
    if base == _FAULTY:
        # the wrapper is transparent: it has whatever its inner has.
        return backend_capabilities(variant or PythonBackend.name)
    try:
        return _REGISTRY[base].capabilities
    except KeyError:
        raise ReproError("unknown SAT backend %r (choose from %s)"
                         % (name, ", ".join(backend_names())))


def make_backend(name, cnf=None, rng=None, **kwargs):
    """Construct a backend by registry name.

    ``cnf`` is loaded at construction; ``rng`` seeds randomized
    heuristics where the backend has any; remaining keyword arguments
    are backend-specific (the reference backends accept the
    :class:`~repro.sat.solver.Solver` heuristic knobs).  Raises
    :class:`BackendUnavailableError` when the backend's library is
    missing and :class:`ReproError` for unknown names.
    """
    base, variant = _split(name)
    if base == _FAULTY:
        from repro.sat.faults import FaultInjectingBackend

        return FaultInjectingBackend(
            cnf, rng=rng, inner=variant or PythonBackend.name, **kwargs)
    try:
        cls = _REGISTRY[base]
    except KeyError:
        raise ReproError("unknown SAT backend %r (choose from %s)"
                         % (name, ", ".join(backend_names())))
    if variant is not None:
        if base != PySATBackend.name:
            raise ReproError("backend %r does not take a :variant" % base)
        kwargs["solver_name"] = variant
    return cls(cnf, rng=rng, **kwargs)
