"""Tests for the self-substitution fallback."""

import itertools

from repro.core.candidates import DependencyTracker
from repro.core.selfsub import can_self_substitute, self_substitute
from repro.core import Manthan3, Manthan3Config, Status
from repro.dqbf import check_henkin_vector, skolem_instance
from repro.dqbf.instance import DQBFInstance
from repro.formula import boolfunc as bf
from repro.formula.cnf import CNF


def make_skolem(universals, existentials, clauses):
    return skolem_instance(universals, existentials, CNF(clauses))


class TestEligibility:
    def test_full_dependency_required(self):
        inst = DQBFInstance([1, 2], {3: [1]}, CNF([[3, 1]]))
        tracker = DependencyTracker(inst.existentials)
        assert not can_self_substitute(inst, tracker, 3)

    def test_skolem_variable_eligible(self):
        inst = make_skolem([1, 2], [3], [[3, 1]])
        tracker = DependencyTracker(inst.existentials)
        assert can_self_substitute(inst, tracker, 3)

    def test_cycle_through_tracker_blocks(self):
        inst = make_skolem([1], [2, 3], [[2, 3]])
        tracker = DependencyTracker(inst.existentials)
        tracker.record_use(3, {2})  # y3 depends on y2
        # y2 self-substitution would reference y3 → cycle.
        assert not can_self_substitute(inst, tracker, 2)
        assert can_self_substitute(inst, tracker, 3)


class TestSubstitution:
    def test_produces_correct_local_choice(self):
        # ϕ = (y ↔ (x1 ∧ x2)); self-substituted f = ϕ|_{y=1} = x1∧x2.
        inst = make_skolem([1, 2], [3],
                           [[-3, 1], [-3, 2], [3, -1, -2]])
        tracker = DependencyTracker(inst.existentials)
        candidates = {3: bf.FALSE}
        assert self_substitute(inst, candidates, tracker, 3)
        for b1, b2 in itertools.product([False, True], repeat=2):
            assert candidates[3].evaluate({1: b1, 2: b2}) == (b1 and b2)

    def test_dag_guard(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [-3, -1, -2],
                            [3, -1, 2], [3, 1, -2]])
        tracker = DependencyTracker(inst.existentials)
        candidates = {3: bf.FALSE}
        assert not self_substitute(inst, candidates, tracker, 3,
                                   max_dag_size=1)
        assert candidates[3] is bf.FALSE  # untouched on failure


class TestEngineIntegration:
    def test_selfsub_configurable(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [-3, -1, -2],
                            [3, -1, 2], [3, 1, -2]])
        config = Manthan3Config(seed=2, use_self_substitution=True,
                                self_substitution_threshold=0,
                                num_samples=4)
        result = Manthan3(config).run(inst, timeout=30)
        assert result.status == Status.SYNTHESIZED
        assert check_henkin_vector(inst, result.functions).valid

    def test_selfsub_stats_key_present(self):
        inst = make_skolem([1], [2], [[2, 1]])
        result = Manthan3(Manthan3Config(seed=1)).run(inst, timeout=30)
        assert "self_substitutions" in result.stats


class TestFalseFastPath:
    def test_forced_universal_detected(self):
        # (x1) ∧ (x1 ∨ y): UP forces x1 → False with witness x1=0.
        inst = DQBFInstance([1], {2: [1]}, CNF([[1], [1, 2]]))
        result = Manthan3().run(inst, timeout=30)
        assert result.status == Status.FALSE
        assert result.witness == {1: False}

    def test_chained_units_detected(self):
        # (y2) ∧ (¬y2 ∨ x1): UP derives x1 through y2.
        inst = DQBFInstance([1], {2: [1]}, CNF([[2], [-2, 1]]))
        result = Manthan3().run(inst, timeout=30)
        assert result.status == Status.FALSE
        from repro.dqbf import check_false_witness

        assert check_false_witness(inst, result.witness).valid
