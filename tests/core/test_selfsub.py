"""Tests for the self-substitution fallback."""

import itertools

from repro.core.candidates import DependencyTracker
from repro.core.order import find_order
from repro.core.selfsub import (
    can_self_substitute,
    run_self_substitution,
    self_substitute,
)
from repro.core import (
    Manthan3,
    Manthan3Config,
    Pipeline,
    Status,
    SynthesisContext,
)
from repro.dqbf import check_henkin_vector, skolem_instance
from repro.dqbf.instance import DQBFInstance
from repro.formula import boolfunc as bf
from repro.formula.cnf import CNF


def make_skolem(universals, existentials, clauses):
    return skolem_instance(universals, existentials, CNF(clauses))


class TestEligibility:
    def test_full_dependency_required(self):
        inst = DQBFInstance([1, 2], {3: [1]}, CNF([[3, 1]]))
        tracker = DependencyTracker(inst.existentials)
        assert not can_self_substitute(inst, tracker, 3)

    def test_skolem_variable_eligible(self):
        inst = make_skolem([1, 2], [3], [[3, 1]])
        tracker = DependencyTracker(inst.existentials)
        assert can_self_substitute(inst, tracker, 3)

    def test_cycle_through_tracker_blocks(self):
        inst = make_skolem([1], [2, 3], [[2, 3]])
        tracker = DependencyTracker(inst.existentials)
        tracker.record_use(3, {2})  # y3 depends on y2
        # y2 self-substitution would reference y3 → cycle.
        assert not can_self_substitute(inst, tracker, 2)
        assert can_self_substitute(inst, tracker, 3)


class TestSubstitution:
    def test_produces_correct_local_choice(self):
        # ϕ = (y ↔ (x1 ∧ x2)); self-substituted f = ϕ|_{y=1} = x1∧x2.
        inst = make_skolem([1, 2], [3],
                           [[-3, 1], [-3, 2], [3, -1, -2]])
        tracker = DependencyTracker(inst.existentials)
        candidates = {3: bf.FALSE}
        assert self_substitute(inst, candidates, tracker, 3)
        for b1, b2 in itertools.product([False, True], repeat=2):
            assert candidates[3].evaluate({1: b1, 2: b2}) == (b1 and b2)

    def test_dag_guard(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [-3, -1, -2],
                            [3, -1, 2], [3, 1, -2]])
        tracker = DependencyTracker(inst.existentials)
        candidates = {3: bf.FALSE}
        assert not self_substitute(inst, candidates, tracker, 3,
                                   max_dag_size=1)
        assert candidates[3] is bf.FALSE  # untouched on failure


class TestEngineIntegration:
    def test_selfsub_configurable(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [-3, -1, -2],
                            [3, -1, 2], [3, 1, -2]])
        config = Manthan3Config(seed=2, use_self_substitution=True,
                                self_substitution_threshold=0,
                                num_samples=4)
        result = Manthan3(config).run(inst, timeout=30)
        assert result.status == Status.SYNTHESIZED
        assert check_henkin_vector(inst, result.functions).valid

    def test_selfsub_stats_key_present(self):
        inst = make_skolem([1], [2], [[2, 1]])
        result = Manthan3(Manthan3Config(seed=1)).run(inst, timeout=30)
        assert "self_substitutions" in result.stats


class TestFallbackEndToEnd:
    """The Manthan2-style fallback through the verify–repair phase: a
    candidate crossing the repair threshold is self-substituted, retired
    into the non-repairable set, and the order is recomputed."""

    def _context(self, inst, candidates, **config_kwargs):
        config = Manthan3Config(seed=3, incremental=False,
                                **config_kwargs)
        ctx = SynthesisContext(inst, config)
        ctx.candidates = dict(candidates)
        ctx.tracker = DependencyTracker(inst.existentials)
        ctx.tracker.seed_subset_pairs(inst)
        ctx.order = find_order(inst, ctx.tracker)
        return ctx

    def test_threshold_crossing_retires_candidate(self):
        # ϕ = y ↔ (x1 ∨ x2); the deliberately wrong candidate FALSE
        # needs a repair, and threshold 0 turns that first repair into a
        # self-substitution.
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [3, -1], [3, -2]])
        ctx = self._context(inst, {3: bf.FALSE},
                            self_substitution_threshold=0)
        result = Pipeline(("verify_repair",)).execute(ctx)
        assert result.status == Status.SYNTHESIZED
        assert check_henkin_vector(inst, result.functions).valid
        assert ctx.stats["self_substitutions"] == 1
        assert 3 in ctx.non_repairable
        assert ctx.repair_counts[3] == 1
        # The retiree is the self-substituted ϕ|_{y=1}, kept in sync
        # with the candidate vector.
        assert ctx.non_repairable[3] is ctx.candidates[3]

    def test_retiree_excluded_from_further_repair(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [3, -1], [3, -2]])
        ctx = self._context(inst, {3: bf.FALSE},
                            self_substitution_threshold=0)
        Pipeline(("verify_repair",)).execute(ctx)
        # Exactly one repair happened: the retirement froze the count.
        assert ctx.repair_counts == {3: 1}

    def test_order_recomputed_on_new_edges(self):
        # ϕ|_{y4=1} mentions y3, so retiring y4 adds the edge y4 → y3
        # and the recomputed order must place y4 before its dependee.
        inst = make_skolem([1], [3, 4], [[4, 3], [1, -3]])
        ctx = self._context(inst, {3: bf.var(1), 4: bf.FALSE})
        ctx.non_repairable = {}
        ctx.repair_counts = {4: ctx.config.self_substitution_threshold + 1}
        assert ctx.order == [3, 4]
        retired = run_self_substitution(ctx)
        assert retired == 1
        assert 4 in ctx.non_repairable
        assert ctx.order == [4, 3]
        assert ctx.order == find_order(inst, ctx.tracker)

    def test_max_dag_refusal_keeps_candidate_repairable(self):
        inst = make_skolem([1, 2], [3],
                           [[-3, 1, 2], [-3, -1, -2],
                            [3, -1, 2], [3, 1, -2]])       # y ↔ (x1 ↔ x2)
        ctx = self._context(inst, {3: bf.FALSE},
                            self_substitution_max_dag=1)
        ctx.non_repairable = {}
        ctx.repair_counts = {3: ctx.config.self_substitution_threshold + 1}
        retired = run_self_substitution(ctx)
        assert retired == 0
        assert ctx.stats.get("self_substitutions", 0) == 0
        assert 3 not in ctx.non_repairable
        assert ctx.candidates[3] is bf.FALSE   # untouched on refusal


class TestFalseFastPath:
    def test_forced_universal_detected(self):
        # (x1) ∧ (x1 ∨ y): UP forces x1 → False with witness x1=0.
        inst = DQBFInstance([1], {2: [1]}, CNF([[1], [1, 2]]))
        result = Manthan3().run(inst, timeout=30)
        assert result.status == Status.FALSE
        assert result.witness == {1: False}

    def test_chained_units_detected(self):
        # (y2) ∧ (¬y2 ∨ x1): UP derives x1 through y2.
        inst = DQBFInstance([1], {2: [1]}, CNF([[2], [-2, 1]]))
        result = Manthan3().run(inst, timeout=30)
        assert result.status == Status.FALSE
        from repro.dqbf import check_false_witness

        assert check_false_witness(inst, result.witness).valid
