"""Problem ingestion: content-based format detection and validation."""

import pytest

from repro.api import Problem, detect_format
from repro.benchgen import generate_pec_instance
from repro.dqbf.instance import DQBFInstance
from repro.utils.errors import ParseError

DQDIMACS = """c explicit Henkin sets
p cnf 3 2
a 1 0
d 2 1 0
d 3 1 0
1 2 0
-2 3 0
"""

QDIMACS = """c prenex QBF
p cnf 3 2
a 1 0
e 2 3 0
1 2 0
-2 3 0
"""

PLAIN_DIMACS = """p cnf 2 2
1 2 0
-1 -2 0
"""


class TestDetectFormat:
    def test_d_lines_mean_dqdimacs(self):
        assert detect_format(DQDIMACS) == "dqdimacs"

    def test_ae_prefix_defaults_to_qdimacs(self):
        assert detect_format(QDIMACS) == "qdimacs"

    def test_plain_dimacs_is_qdimacs(self):
        assert detect_format(PLAIN_DIMACS) == "qdimacs"

    @pytest.mark.parametrize("path,expected", [
        ("suite/x.dqdimacs", "dqdimacs"),
        ("suite/x.qdimacs", "qdimacs"),
        ("suite/x.dimacs", "qdimacs"),
        ("suite/x.DQDIMACS", "dqdimacs"),
        ("suite/x.cnf", "qdimacs"),
    ])
    def test_extension_breaks_the_ae_tie(self, path, expected):
        assert detect_format(QDIMACS, path=path) == expected

    def test_content_beats_extension(self):
        # A d-line is DQDIMACS whatever the file is called; the QDIMACS
        # parser would reject it.
        assert detect_format(DQDIMACS, path="x.qdimacs") == "dqdimacs"

    def test_headerless_input_is_rejected_with_a_clear_error(self):
        with pytest.raises(ParseError, match="no 'p cnf' header"):
            detect_format("hello world\nthis is not dimacs\n")

    def test_error_names_the_path(self):
        with pytest.raises(ParseError, match="bad.txt"):
            detect_format("garbage", path="bad.txt")


class TestFromText:
    def test_auto_parses_both_formats(self):
        dq = Problem.from_text(DQDIMACS)
        q = Problem.from_text(QDIMACS)
        assert dq.format == "dqdimacs" and q.format == "qdimacs"
        # Same semantics here: y2/y3 depend on {1} vs on all-left {1}.
        assert dq.dependencies[2] == q.dependencies[2] == frozenset({1})

    def test_explicit_format_is_honored(self):
        problem = Problem.from_text(QDIMACS, fmt="dqdimacs")
        assert problem.format == "dqdimacs"
        assert sorted(problem.existentials) == [2, 3]

    def test_unknown_format_rejected(self):
        with pytest.raises(ParseError, match="unknown format"):
            Problem.from_text(DQDIMACS, fmt="aiger")


class TestFromFile:
    def test_reads_and_names_after_the_file(self, tmp_path):
        path = tmp_path / "inst.dqdimacs"
        path.write_text(DQDIMACS)
        problem = Problem.from_file(str(path))
        assert problem.name == "inst.dqdimacs"
        assert problem.format == "dqdimacs"
        assert problem.source == str(path)

    def test_qdimacs_named_file_with_d_lines_still_parses(self, tmp_path):
        # The old CLI loader picked the parser from the extension alone
        # and fed QDIMACS-named DQBF content to the wrong reader.
        path = tmp_path / "inst.qdimacs"
        path.write_text(DQDIMACS)
        problem = Problem.from_file(str(path))
        assert problem.format == "dqdimacs"
        assert problem.dependencies[3] == frozenset({1})

    def test_unparseable_file_gives_a_clear_error(self, tmp_path):
        path = tmp_path / "junk.dqdimacs"
        path.write_text("MODULE main\nVAR x : boolean;\n")
        with pytest.raises(ParseError,
                           match="neither DQDIMACS nor QDIMACS"):
            Problem.from_file(str(path))


class TestLoad:
    def test_dispatch(self, tmp_path):
        inst = generate_pec_instance(seed=1)
        assert Problem.load(inst).instance is inst
        problem = Problem.load(DQDIMACS)
        assert Problem.load(problem) is problem
        path = tmp_path / "x.dqdimacs"
        path.write_text(DQDIMACS)
        assert Problem.load(str(path)).name == "x.dqdimacs"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="cannot load"):
            Problem.load(42)

    def test_constructor_rejects_raw_text(self):
        with pytest.raises(TypeError, match="from_text"):
            Problem(DQDIMACS)


class TestViews:
    def test_instance_views(self):
        problem = Problem.from_text(DQDIMACS, name="t")
        assert isinstance(problem.instance, DQBFInstance)
        assert problem.num_universals == 1
        assert problem.num_existentials == 2
        assert problem.universals == [1]
        assert problem.stats()["clauses"] == 2
        assert "dqdimacs" in repr(problem)
