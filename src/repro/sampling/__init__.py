"""Constrained sampling substrate (the role CMSGen plays in the paper).

Manthan3's data-generation stage needs many *diverse* satisfying
assignments of the specification ϕ.  We approximate uniform sampling with
a randomized CDCL sampler: random branching order and random (optionally
per-variable weighted) polarities make independent solver runs land in
well-spread regions of the solution space.  The *adaptive weighting*
scheme mirrors Manthan's: after a pilot round, each existential variable's
polarity weight is set from its observed marginal so that skewed variables
keep appearing with both labels in the training data.

:mod:`repro.sampling.xor` adds optional pairwise-independent XOR hashing
(UniGen-style cell thinning) for callers that want stronger uniformity
guarantees at extra cost.
"""

from repro.sampling.sampler import Sampler, sample_models
from repro.sampling.xor import random_xor_constraints, add_parity_constraint

__all__ = [
    "Sampler",
    "sample_models",
    "random_xor_constraints",
    "add_parity_constraint",
]
