"""Succinct DQBF encodings of propositional satisfiability.

QBFEval's DQBF track contains "succinct DQBF representations of
propositional satisfiability problems" (paper §6).  The standard trick:
a variable that may depend on a *single* universal can be forced to be a
constant by a twin construction, so a SAT question over constants embeds
into DQBF.

For each SAT variable ``z_i`` we introduce universals ``x_i, x'_i`` and
existentials ``y_i`` (depending on ``x_i``) and ``y'_i`` (depending on
``x'_i``).  The unconditional constraint ``y_i ↔ y'_i`` makes both
functions equal on *every* pair of inputs, hence constant (and equal).
Conjoining ψ(Y) yields a DQBF that is True iff ψ is satisfiable, and the
Henkin functions read back the satisfying assignment.
"""

from repro.dqbf.instance import DQBFInstance
from repro.formula.cnf import CNF, lit_var, lit_sign
from repro.utils.rng import make_rng


def generate_succinct_sat_instance(psi_clauses, num_z, seed=None, name=None):
    """Encode a SAT formula (clauses over variables ``1..num_z``).

    Returns a :class:`DQBFInstance` that is True iff ψ is satisfiable.
    """
    cnf = CNF()
    x = [cnf.fresh_var() for _ in range(num_z)]        # x_i
    xp = [cnf.fresh_var() for _ in range(num_z)]       # x'_i
    y = [cnf.fresh_var() for _ in range(num_z)]        # y_i
    yp = [cnf.fresh_var() for _ in range(num_z)]       # y'_i

    dependencies = {}
    for i in range(num_z):
        dependencies[y[i]] = [x[i]]
        dependencies[yp[i]] = [xp[i]]
        # y_i ↔ y'_i with disjoint single-var dependencies ⇒ constants.
        cnf.add_clause((-y[i], yp[i]))
        cnf.add_clause((y[i], -yp[i]))

    for clause in psi_clauses:
        mapped = []
        for l in clause:
            z = lit_var(l)
            if not 1 <= z <= num_z:
                raise ValueError("ψ literal %d out of range" % l)
            mapped.append(y[z - 1] if lit_sign(l) else -y[z - 1])
        cnf.add_clause(mapped)

    name = name or "succinct_sat_z%d_c%d_s%s" % (num_z, len(psi_clauses),
                                                 seed)
    return DQBFInstance(x + xp, dependencies, cnf, name=name)


def random_ksat(num_z, num_clauses, k=3, rng=None):
    """Random k-SAT clause list over ``1..num_z`` (no tautologies)."""
    rng = make_rng(rng)
    clauses = []
    while len(clauses) < num_clauses:
        chosen = rng.sample(range(1, num_z + 1), min(k, num_z))
        clause = tuple(v if rng.random() < 0.5 else -v for v in chosen)
        clauses.append(clause)
    return clauses


def generate_random_succinct_sat(num_z=5, clause_ratio=3.0, seed=None,
                                 name=None):
    """Random succinct-SAT instance (near-threshold ratio ⇒ hard mix)."""
    rng = make_rng(seed)
    clauses = random_ksat(num_z, max(1, int(round(clause_ratio * num_z))),
                          rng=rng)
    return generate_succinct_sat_instance(
        clauses, num_z, seed=seed,
        name=name or "succinct_sat_z%d_r%.1f_s%s" % (num_z, clause_ratio,
                                                     seed))
