"""Verilog netlist export for synthesized Henkin function vectors.

Produces a synthesizable structural/dataflow Verilog module so the
patch functions coming out of the engines (e.g. the ECO use case of the
paper's introduction) can be dropped into a hardware flow.  Expressions
are emitted as ``assign`` statements over ``&``, ``|``, ``^``, ``~`` with
shared subexpressions factored into intermediate wires.
"""

from repro.formula import boolfunc as bf


def _sanitize(name):
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if not text or text[0].isdigit():
        text = "n_" + text
    return text


def expr_to_verilog(expr, name_of, new_wire, lines, memo):
    """Emit ``expr``; returns the Verilog operand string.

    DAG nodes referenced more than once get their own wire.
    """
    key = id(expr)
    if key in memo:
        return memo[key]
    if expr.op == bf.OP_CONST:
        text = "1'b1" if expr.payload else "1'b0"
    elif expr.op == bf.OP_VAR:
        text = name_of(expr.payload)
    elif expr.op == bf.OP_NOT:
        inner = expr_to_verilog(expr.children[0], name_of, new_wire,
                                lines, memo)
        text = "~" + inner if _is_atom(inner) else "~(%s)" % inner
    else:
        joiner = {bf.OP_AND: " & ", bf.OP_OR: " | ",
                  bf.OP_XOR: " ^ "}[expr.op]
        parts = []
        for child in expr.children:
            part = expr_to_verilog(child, name_of, new_wire, lines, memo)
            parts.append(part if _is_atom(part) else "(%s)" % part)
        text = joiner.join(parts)
    # Factor non-trivial shared nodes into wires.
    if expr.op in (bf.OP_AND, bf.OP_OR, bf.OP_XOR) and \
            expr.dag_size() > 6:
        wire = new_wire()
        lines.append("  assign %s = %s;" % (wire, text))
        text = wire
    memo[key] = text
    return text


def _is_atom(text):
    return all(c.isalnum() or c in "_'" for c in text)


def write_henkin_verilog(instance, functions, module_name="henkin_patch"):
    """Verilog module for a synthesized vector of ``instance``.

    Ports: one input per universal (``x<id>``), one output per
    existential (``y<id>``).
    """
    inputs = ["x%d" % x for x in instance.universals]
    outputs = ["y%d" % y for y in instance.existentials]
    module_name = _sanitize(module_name)

    lines = []
    lines.append("// Henkin function vector synthesized by repro")
    lines.append("// instance: %s" % instance.name)
    ports = ", ".join(inputs + outputs)
    lines.append("module %s(%s);" % (module_name, ports))
    for name in inputs:
        lines.append("  input %s;" % name)
    for name in outputs:
        lines.append("  output %s;" % name)

    body = []
    wires = []
    counter = [0]

    def new_wire():
        counter[0] += 1
        wire = "t%d" % counter[0]
        wires.append(wire)
        return wire

    memo = {}
    assigns = []
    for y in instance.existentials:
        text = expr_to_verilog(functions[y], lambda v: "x%d" % v,
                               new_wire, body, memo)
        assigns.append("  assign y%d = %s;" % (y, text))

    for wire in wires:
        lines.append("  wire %s;" % wire)
    lines.extend(body)
    lines.extend(assigns)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
