"""Virtual-Best-Synthesizer analytics (the quantities behind §6).

All functions take a :class:`~repro.portfolio.runner.ResultTable`; engine
subsets are passed as name lists so the same table yields
``VBS(HQS2, Pedant)`` and ``VBS(HQS2, Pedant, Manthan3)`` (Figure 6).
"""


def vbs_times(table, engine_names):
    """Per-instance VBS time: min over members that solved it.

    Returns ``{instance: time}`` for instances solved by ≥1 member.
    """
    out = {}
    for instance in table.instances():
        times = [table.time_of(e, instance) for e in engine_names]
        times = [t for t in times if t is not None]
        if times:
            out[instance] = min(times)
    return out


def cactus_series(table, engine_names):
    """Sorted runtimes — the y-values of a cactus plot (Figure 6).

    Point ``(k, series[k-1])`` reads "k instances solved within that
    time each".
    """
    return sorted(vbs_times(table, engine_names).values())


def scatter_pairs(table, engine_a, engine_b, timeout_value=None):
    """Per-instance (time_a, time_b) pairs for Figures 7–10.

    ``engine_a``/``engine_b`` may be single names or name lists (a list
    denotes a VBS side, as in Figure 7).  Unsolved sides are reported as
    ``timeout_value`` (default: the table's timeout), matching how the
    paper plots timeout bands.
    """
    if timeout_value is None:
        timeout_value = table.timeout
    names_a = [engine_a] if isinstance(engine_a, str) else list(engine_a)
    names_b = [engine_b] if isinstance(engine_b, str) else list(engine_b)
    times_a = vbs_times(table, names_a)
    times_b = vbs_times(table, names_b)
    pairs = []
    for instance in table.instances():
        ta = times_a.get(instance, timeout_value)
        tb = times_b.get(instance, timeout_value)
        pairs.append((instance, ta, tb))
    return pairs


def solved_counts(table, engine_names=None):
    """``{engine: #solved}`` (the 148/138/116 numbers of §6)."""
    engine_names = engine_names or table.engines()
    return {e: len(table.solved_instances(e)) for e in engine_names}


def unique_solves(table, engine, others):
    """Instances ``engine`` solved that none of ``others`` solved
    (the paper's 26-instances-only-Manthan3 figure)."""
    mine = table.solved_instances(engine)
    for other in others:
        mine -= table.solved_instances(other)
    return sorted(mine)


def fastest_counts(table, engine_names=None):
    """``{engine: #instances where it was strictly the fastest solver}``
    (the paper's 42-shortest-time count; ties go to the earlier name)."""
    engine_names = engine_names or table.engines()
    counts = {e: 0 for e in engine_names}
    for instance in table.instances():
        best_engine = None
        best_time = None
        for e in engine_names:
            t = table.time_of(e, instance)
            if t is not None and (best_time is None or t < best_time):
                best_engine, best_time = e, t
        if best_engine is not None:
            counts[best_engine] += 1
    return counts


def within_slack_of_vbs(table, engine, others, slack=10.0):
    """Instances where ``engine`` is at most ``slack`` seconds slower
    than VBS(others) — the green band of Figure 7 (paper: 47 instances
    within 10 s)."""
    mine = {}
    for instance in table.instances():
        t = table.time_of(engine, instance)
        if t is not None:
            mine[instance] = t
    vbs = vbs_times(table, others)
    hits = []
    for instance, t in mine.items():
        reference = vbs.get(instance)
        if reference is None or t <= reference + slack:
            hits.append(instance)
    return sorted(hits)


def unsolved_breakdown(table, engine):
    """Split an engine's unsolved instances by cause.

    The paper reports Manthan3's 88 unsolved-but-solvable split into 49
    incompleteness cases vs timeouts; we mirror it with the engine's
    UNKNOWN (incompleteness/guard) vs TIMEOUT statuses.
    """
    breakdown = {"UNKNOWN": [], "TIMEOUT": [], "FALSE": [], "INVALID": []}
    for record in table.by_engine(engine):
        if record.solved:
            continue
        breakdown.setdefault(record.status, []).append(record.instance)
    return breakdown
