"""Tests for the Pedant-like definition/arbiter baseline."""

import random

from repro.baselines import PedantLikeSynthesizer
from repro.core.result import Status
from repro.dqbf import check_henkin_vector
from repro.dqbf.instance import DQBFInstance
from repro.formula.cnf import CNF

from tests.conftest import brute_force_dqbf_true, random_small_dqbf


def make(universals, deps, clauses):
    return DQBFInstance(universals, deps, CNF(clauses))


class TestCorrectness:
    def test_defined_output_via_gates(self):
        inst = make([1, 2], {3: [1, 2]},
                    [[-3, 1], [-3, 2], [3, -1, -2]])
        result = PedantLikeSynthesizer().run(inst, timeout=30)
        assert result.status == Status.SYNTHESIZED
        assert result.stats["definitions"] == 1
        assert check_henkin_vector(inst, result.functions).valid

    def test_arbiter_refinement(self):
        # y must equal x but starts at the default constant: pure CEGIS.
        inst = make([1], {2: [1]}, [[-2, 1], [2, -1]])
        engine = PedantLikeSynthesizer()
        result = engine.run(inst, timeout=30)
        assert result.status == Status.SYNTHESIZED
        assert result.stats["arbiter_rounds"] >= 1
        assert check_henkin_vector(inst, result.functions).valid

    def test_false_instance(self, false_instance):
        result = PedantLikeSynthesizer().run(false_instance, timeout=30)
        assert result.status == Status.FALSE

    def test_limitation_example_solved(self, limitation_example_instance):
        result = PedantLikeSynthesizer().run(limitation_example_instance,
                                             timeout=30)
        assert result.status == Status.SYNTHESIZED
        assert check_henkin_vector(limitation_example_instance,
                                   result.functions).valid

    def test_agreement_with_brute_force(self):
        rng = random.Random(77)
        engine = PedantLikeSynthesizer()
        for trial in range(25):
            inst = random_small_dqbf(rng)
            truth = brute_force_dqbf_true(inst)
            result = engine.run(inst, timeout=20)
            assert result.status in (Status.SYNTHESIZED, Status.FALSE), \
                (trial, result.reason)
            assert (result.status == Status.SYNTHESIZED) == truth, trial
            if result.synthesized:
                assert check_henkin_vector(inst, result.functions).valid

    def test_returned_functions_are_grounded(self):
        """Definitions referencing other existentials must be composed
        away before the vector is returned."""
        from repro.benchgen.pec import generate_defined_pec_instance

        inst = generate_defined_pec_instance(num_inputs=8, num_outputs=2,
                                             support_width=4, seed=3)
        result = PedantLikeSynthesizer().run(inst, timeout=60)
        assert result.status == Status.SYNTHESIZED
        for y, f in result.functions.items():
            assert f.support() <= inst.dependencies[y]


class TestKnobs:
    def test_default_value_true(self):
        inst = make([1], {2: [1]}, [[2, 1]])
        result = PedantLikeSynthesizer(default_value=True).run(inst,
                                                               timeout=30)
        assert result.status == Status.SYNTHESIZED

    def test_iteration_cap(self):
        from repro.benchgen import generate_planted_instance

        inst = generate_planted_instance(seed=5)
        result = PedantLikeSynthesizer(max_iterations=3).run(inst,
                                                             timeout=30)
        assert result.status in (Status.UNKNOWN, Status.SYNTHESIZED,
                                 Status.TIMEOUT)

    def test_definition_bit_cap(self):
        inst = make([1, 2], {3: [1, 2]},
                    [[-3, 1], [-3, 2], [3, -1, -2]])
        engine = PedantLikeSynthesizer(max_definition_bits=0)
        result = engine.run(inst, timeout=30)
        # gates still fire (syntactic); only Padoa tabulation is capped
        assert result.status == Status.SYNTHESIZED
