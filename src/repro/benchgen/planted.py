"""Random DQBF with planted *region rules* over wide dependency sets.

The family where the data-driven approach shines and both baselines
struggle, mirroring the 26 instances only Manthan3 solves in the paper:

* every clause is an implication ``region → (y = v)`` where ``region`` is
  a small cube over a fixed selector subset ``S_y ⊆ H_y`` — so the
  matrix *forces* each output on the covered regions and leaves it free
  elsewhere;
* dependency sets are wide (default 18), so clause-local universal
  expansion needs ``2^{|H_y|−|region|}`` copies per clause and trips its
  size guards;
* outputs are not uniquely defined over ``H_y`` (region coverage has
  gaps and ``|H_y|`` exceeds tabulation caps), so definition extraction
  yields nothing and arbiter refinement must discover the rules row by
  row;
* decision trees, in contrast, recover the selector structure from
  samples in one shot, and every counterexample's UNSAT core *is* a
  region cube, so repair converges in a handful of iterations.

Instances are True by construction (the rules are consistent because the
regions for one output are mutually disjoint cubes over its selector).
"""

from repro.dqbf.instance import DQBFInstance
from repro.formula.cnf import CNF
from repro.utils.rng import make_rng


def generate_planted_instance(num_universals=20, num_existentials=4,
                              dep_width=18, region_width=3,
                              rules_per_y=6, seed=None, name=None):
    """Build one region-rule instance (True by construction).

    Parameters
    ----------
    num_universals / num_existentials:
        Sizes of X and Y.
    dep_width:
        ``|H_y|`` for every output (wide = expansion-hostile).
    region_width:
        Cube width of each rule's region (over the selector subset).
    rules_per_y:
        Region rules per output; at most ``2^region_width`` (the number
        of disjoint cubes a selector supports).
    """
    rng = make_rng(seed)
    universals = list(range(1, num_universals + 1))
    cnf = CNF(num_vars=num_universals)
    existentials = cnf.extend_vars(num_existentials)

    dependencies = {}
    for y in existentials:
        deps = sorted(rng.sample(universals,
                                 min(dep_width, num_universals)))
        dependencies[y] = deps
        selector = rng.sample(deps, min(region_width, len(deps)))
        combos = list(range(1 << len(selector)))
        rng.shuffle(combos)
        for combo in combos[:min(rules_per_y, len(combos))]:
            value = rng.random() < 0.5
            region_lits = []
            for i, x in enumerate(selector):
                bit = (combo >> i) & 1
                region_lits.append(x if bit else -x)
            # region → (y = value):  (¬region ∨ ±y)
            clause = [-l for l in region_lits]
            clause.append(y if value else -y)
            cnf.add_clause(clause)

    name = name or "planted_x%d_y%d_w%d_r%d_s%s" % (
        num_universals, num_existentials, dep_width, rules_per_y, seed)
    return DQBFInstance(universals, dependencies, cnf, name=name)
