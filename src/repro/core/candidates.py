"""Candidate learning (Algorithm 2: ``CandidateHkF``).

For each existential ``yi`` a binary decision tree is trained on the
sampled models: features are the valuations of ``Hi`` plus any ``yj``
with ``Hj ⊆ Hi`` that is not (transitively) dependent on ``yi``; labels
are the valuations of ``yi``.  The candidate is the disjunction of the
tree's 1-paths.  Discovered uses of ``yj`` features are recorded in the
dependency bookkeeping ``D`` (line 12) so ``FindOrder`` can later produce
a valid total order.
"""

import networkx as nx

from repro.learning.decision_tree import DecisionTree
from repro.learning.tree_to_formula import tree_to_expr


class DependencyTracker:
    """The paper's ``D``, kept as an explicit dependency digraph.

    Edge ``u → v`` means "``u``'s candidate depends on ``v``".  The paper
    maintains per-variable sets ``di`` updated on the fly (Algorithm 2,
    line 12); we keep the graph and answer "may ``yi`` use ``yj``?" with a
    reachability query, which is transitively closed by construction —
    the set formulation can miss late-added transitive dependers and
    admit a cycle.
    """

    def __init__(self, existentials):
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(existentials)

    def seed_subset_pairs(self, instance):
        """Lines 3–5 of Algorithm 1: ``Hj ⊂ Hi`` fixes the direction
        upfront — ``yi`` may (eventually) use ``yj``, never vice versa."""
        for yi, yj in instance.dependency_subset_pairs():
            self.graph.add_edge(yi, yj)

    def record_use(self, yi, used_ys):
        """``yi``'s candidate uses each ``yk ∈ used_ys``."""
        for yk in used_ys:
            self.graph.add_edge(yi, yk)

    def may_use(self, yi, yj):
        """Can ``yi``'s candidate take ``yj`` as a feature without
        creating a cycle?  Yes iff ``yj`` does not (transitively) depend
        on ``yi``."""
        return yi != yj and not nx.has_path(self.graph, yj, yi)

    def edges(self):
        """Yield ``(depender, dependee)`` pairs."""
        return iter(self.graph.edges())


def feature_set_for(instance, yi, tracker, fixed=(), use_y_features=True):
    """Feature variables for learning ``yi`` (Algorithm 2, lines 1–4)."""
    features = sorted(instance.dependencies[yi])
    if not use_y_features:
        return features
    hi = instance.dependencies[yi]
    for yj in instance.existentials:
        if yj == yi or yj in fixed:
            # Fixed (preprocessed) functions are final; keeping them out
            # of feature sets keeps candidate supports repair-friendly.
            continue
        if instance.dependencies[yj] <= hi and tracker.may_use(yi, yj):
            features.append(yj)
    return features


def learn_candidate(instance, yi, samples, tracker, config, fixed=()):
    """Learn the candidate ``fi`` for ``yi``; returns ``(expr, used_ys)``
    and updates ``tracker`` (Algorithm 2)."""
    features = feature_set_for(instance, yi, tracker, fixed=fixed,
                               use_y_features=config.use_y_features)
    rows = [{f: int(model[f]) for f in features} for model in samples]
    labels = [int(model[yi]) for model in samples]
    tree = DecisionTree(
        max_depth=config.tree_max_depth,
        min_impurity_decrease=config.tree_min_impurity_decrease,
    ).fit(rows, labels, features)
    expr = tree_to_expr(tree, label=1)
    used_ys = {f for f in tree.used_features()
               if f in instance.dependencies}
    tracker.record_use(yi, used_ys)
    return expr, used_ys


def learn_all_candidates(instance, samples, config, fixed=None):
    """Algorithm 1, lines 2–7: seed D, then learn every non-fixed
    candidate.  Returns ``(candidates, tracker)`` where ``candidates``
    includes the fixed functions."""
    fixed = dict(fixed or {})
    tracker = DependencyTracker(instance.existentials)
    tracker.seed_subset_pairs(instance)
    candidates = dict(fixed)
    y_set = set(instance.existentials)
    # Fixed (preprocessed) candidates may reference other existentials
    # (gate-definition DAGs); record those edges so FindOrder places the
    # definitions before the variables they mention.
    for y, expr in fixed.items():
        used = expr.support() & y_set
        if used:
            tracker.record_use(y, used)
    for yi in instance.existentials:
        if yi in fixed:
            continue
        expr, _ = learn_candidate(instance, yi, samples, tracker, config,
                                  fixed=fixed)
        candidates[yi] = expr
    return candidates, tracker
