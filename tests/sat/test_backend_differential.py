"""Differential fuzzing of SAT backends over incremental scripts.

Every backend behind :mod:`repro.sat.backend` must honor the same
incremental protocol: clause groups constrain while live, selectors
never escape, cores are genuine UNSAT subsets of the caller's
assumptions, and budget exhaustion surfaces as ``UNKNOWN`` — never as
a wrong verdict.  This suite generates seeded random incremental
scripts (interleaved ``add_clause`` / ``new_group`` / ``release_group``
/ ``solve`` spanning SAT, UNSAT, and budget-exhausted regimes) and
replays each script against every installed backend, checking each
answer **against the formula itself** rather than against another
backend's opinion:

* a definitive verdict must match a fresh reference solve over the
  script's live clause set at that point;
* a model must assign every problem variable (and nothing else),
  satisfy every live clause, and agree with the assumptions;
* a core must be a subset of the assumptions whose conjunction with the
  live clauses is genuinely UNSAT;
* ``UNKNOWN`` is legal only on budgeted (conflict-budget or deadline)
  calls.

On top of the formula-level checks, ``python`` and ``python-emulated``
are compared *bit for bit* — same statuses (including ``UNKNOWN``),
same models, same cores — because the emulation layer implements the
exact selector strategy the native groups use internally.

``REPRO_FUZZ_ITERATIONS`` scales the number of scripts (default 200
for tier-1; CI's dedicated leg raises it).
"""

import os
import random

import pytest

from repro.sat.backend import available_backends, make_backend
from repro.sat.solver import SAT, UNSAT, UNKNOWN, Solver
from repro.utils.timer import Deadline

ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "200"))

#: Backends beyond the reference that this environment can construct.
ALT_BACKENDS = [name for name in available_backends() if name != "python"]


# ----------------------------------------------------------------------
# script generation
# ----------------------------------------------------------------------
def make_script(seed):
    """A seeded incremental script: ``(num_vars, ops)``.

    Ops reference groups by *creation index* so the same script replays
    against backends whose group handles differ.  Budgets are chosen so
    the corpus as a whole exercises SAT, UNSAT, and budget-exhausted
    outcomes (asserted by ``test_script_corpus_covers_all_regimes``).
    """
    rng = random.Random(seed)
    num_vars = rng.randint(4, 12)
    ops = []
    created = 0
    live = []
    for _ in range(rng.randint(10, 30)):
        r = rng.random()
        if r < 0.45:
            width = rng.choice([1, 2, 3, 3])
            vs = rng.sample(range(1, num_vars + 1), width)
            lits = tuple(v if rng.random() < 0.5 else -v for v in vs)
            target = rng.choice(live) if live and rng.random() < 0.5 \
                else None
            ops.append(("clause", lits, target))
        elif r < 0.60:
            ops.append(("group", created))
            live.append(created)
            created += 1
        elif r < 0.70 and live:
            ops.append(("release", live.pop(rng.randrange(len(live)))))
        else:
            k = rng.randint(0, min(3, num_vars))
            assumptions = tuple(
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), k))
            budget = rng.choice([None, None, None, rng.randint(1, 4)])
            expired = budget is None and rng.random() < 0.1
            ops.append(("solve", assumptions, budget, expired))
    ops.append(("solve", (), None, False))
    return num_vars, ops


def live_clause_log(ops):
    """Per-solve ground truth: ``(live_clauses, assumptions, budgeted)``.

    Tracked independently of any backend, straight from the script.
    """
    permanent = []
    group_clauses = {}
    live = set()
    log = []
    for op in ops:
        if op[0] == "clause":
            _, lits, target = op
            bucket = permanent if target is None else group_clauses[target]
            bucket.append(lits)
        elif op[0] == "group":
            group_clauses[op[1]] = []
            live.add(op[1])
        elif op[0] == "release":
            live.discard(op[1])
        else:
            clauses = list(permanent)
            for g in sorted(live):
                clauses.extend(group_clauses[g])
            log.append((clauses, list(op[1]),
                        op[2] is not None or op[3]))
    return log


def replay(backend_name, num_vars, ops):
    """Run the script; returns one ``(status, model, core)`` per solve."""
    backend = make_backend(backend_name)
    backend.ensure_vars(num_vars)
    handles = {}
    results = []
    for op in ops:
        if op[0] == "clause":
            _, lits, target = op
            backend.add_clause(
                lits, group=None if target is None else handles[target])
        elif op[0] == "group":
            handles[op[1]] = backend.new_group()
        elif op[0] == "release":
            backend.release_group(handles[op[1]])
        else:
            _, assumptions, budget, expired = op
            status = backend.solve(
                assumptions=list(assumptions), conflict_budget=budget,
                deadline=Deadline(0.0) if expired else None)
            results.append((
                status,
                dict(backend.model) if status == SAT else None,
                list(backend.core) if status == UNSAT else None,
            ))
    return results


# ----------------------------------------------------------------------
# formula-level validation
# ----------------------------------------------------------------------
def reference_verdict(num_vars, clauses, assumptions):
    """Fresh, unbudgeted reference solve — always definitive."""
    ref = Solver()
    ref.ensure_vars(num_vars)
    for clause in clauses:
        ref.add_clause(clause)
    return ref.solve(assumptions=assumptions)


def check_outcome(outcome, clauses, assumptions, budgeted, num_vars,
                  label):
    status, model, core = outcome
    if status == UNKNOWN:
        assert budgeted, "%s: UNKNOWN on an unbudgeted call" % label
        return
    truth = reference_verdict(num_vars, clauses, assumptions)
    assert status == truth, \
        "%s: verdict %s, reference says %s" % (label, status, truth)
    if status == SAT:
        assert set(model) == set(range(1, num_vars + 1)), \
            "%s: model keys leak auxiliaries or drop vars" % label
        for lit in assumptions:
            assert model[abs(lit)] == (lit > 0), \
                "%s: model violates assumption %d" % (label, lit)
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause), \
                "%s: model falsifies live clause %r" % (label, clause)
    else:
        assert set(core) <= set(assumptions), \
            "%s: core %r not a subset of assumptions %r" \
            % (label, core, assumptions)
        assert reference_verdict(num_vars, clauses, core) == UNSAT, \
            "%s: core %r does not certify UNSAT" % (label, core)


def run_differential(backend_name):
    statuses = set()
    for seed in range(ITERATIONS):
        num_vars, ops = make_script(seed)
        log = live_clause_log(ops)
        results = replay(backend_name, num_vars, ops)
        assert len(results) == len(log)
        for idx, (outcome, (clauses, assumptions, budgeted)) \
                in enumerate(zip(results, log)):
            check_outcome(outcome, clauses, assumptions, budgeted,
                          num_vars, "%s seed=%d solve#%d"
                          % (backend_name, seed, idx))
            statuses.add(outcome[0])
    return statuses


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------
def test_script_corpus_covers_all_regimes():
    """The generator is only a fuzzer if it reaches every regime."""
    statuses = run_differential("python")
    if ITERATIONS >= 100:
        assert statuses == {SAT, UNSAT, UNKNOWN}


@pytest.mark.parametrize("backend", ALT_BACKENDS)
def test_backend_agrees_with_the_formula(backend):
    run_differential(backend)


def test_emulated_groups_bit_exact_with_native():
    """python vs python-emulated: same inner CDCL, group machinery
    native vs selector-emulated — statuses (including UNKNOWN), models,
    and cores must be identical call for call."""
    for seed in range(ITERATIONS):
        num_vars, ops = make_script(seed)
        native = replay("python", num_vars, ops)
        emulated = replay("python-emulated", num_vars, ops)
        assert native == emulated, "seed=%d diverges" % seed
