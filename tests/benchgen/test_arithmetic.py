"""Tests for the arithmetic-circuit families."""

import itertools

from repro.baselines import ExpansionSynthesizer, PedantLikeSynthesizer
from repro.benchgen.arithmetic import (
    generate_adder_pec_instance,
    generate_comparator_instance,
    less_than,
    ripple_carry_adder,
)
from repro.core.result import Status
from repro.dqbf import check_henkin_vector


class TestAdderCircuit:
    def test_ripple_carry_semantics(self):
        bits = 3
        a_vars = [1, 2, 3]
        b_vars = [4, 5, 6]
        sums, carry = ripple_carry_adder(a_vars, b_vars)
        for a in range(8):
            for b in range(8):
                env = {}
                for i in range(bits):
                    env[a_vars[i]] = bool((a >> i) & 1)
                    env[b_vars[i]] = bool((b >> i) & 1)
                got = sum(sums[i].evaluate(env) << i
                          for i in range(bits))
                got += carry.evaluate(env) << bits
                assert got == a + b, (a, b)

    def test_less_than_semantics(self):
        a_vars = [1, 2, 3]
        b_vars = [4, 5, 6]
        lt = less_than(a_vars, b_vars)
        for a in range(8):
            for b in range(8):
                env = {}
                for i in range(3):
                    env[a_vars[i]] = bool((a >> i) & 1)
                    env[b_vars[i]] = bool((b >> i) & 1)
                assert lt.evaluate(env) == (a < b), (a, b)


class TestAdderPec:
    def test_realizable_is_true_and_boxes_recoverable(self):
        inst = generate_adder_pec_instance(bits=3, boxed_stage=1,
                                           realizable=True, seed=1)
        result = ExpansionSynthesizer().run(inst, timeout=60)
        assert result.status == Status.SYNTHESIZED
        assert check_henkin_vector(inst, result.functions).valid

    def test_blinded_stage_is_false(self):
        # hiding the carry-in cone of stage ≥ 1 breaks realizability
        inst = generate_adder_pec_instance(bits=3, boxed_stage=2,
                                           realizable=False, seed=1)
        result = ExpansionSynthesizer().run(inst, timeout=60)
        assert result.status == Status.FALSE

    def test_stage_zero_needs_no_carry(self):
        inst = generate_adder_pec_instance(bits=2, boxed_stage=0,
                                           realizable=True, seed=0)
        result = ExpansionSynthesizer().run(inst, timeout=60)
        assert result.status == Status.SYNTHESIZED

    def test_box_dependencies_are_the_cone(self):
        inst = generate_adder_pec_instance(bits=4, boxed_stage=2,
                                           realizable=True, seed=2)
        narrow = [y for y in inst.existentials
                  if len(inst.dependencies[y]) < 8]
        assert len(narrow) == 2
        for y in narrow:
            assert inst.dependencies[y] == frozenset({1, 2, 3, 5, 6, 7})


class TestComparator:
    def test_definition_engine_solves_it(self):
        inst = generate_comparator_instance(bits=3, seed=1)
        result = PedantLikeSynthesizer().run(inst, timeout=60)
        assert result.status == Status.SYNTHESIZED
        cert = check_henkin_vector(inst, result.functions)
        assert cert.valid
        # the recovered box must be exactly A < B
        box = [y for y in inst.existentials
               if y == min(inst.existentials)][0]
        f = result.functions[box]
        for a, b in itertools.product(range(8), repeat=2):
            env = {}
            for i in range(3):
                env[1 + i] = bool((a >> i) & 1)
                env[4 + i] = bool((b >> i) & 1)
            assert f.evaluate(env) == (a < b)
