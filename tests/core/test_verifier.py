"""Tests for the verification phase (Algorithm 1, lines 10–16)."""

from repro.core.verifier import build_verification_cnf, verify_candidates
from repro.dqbf.instance import DQBFInstance
from repro.formula import boolfunc as bf
from repro.formula.cnf import CNF


def make(universals, deps, clauses):
    return DQBFInstance(universals, deps, CNF(clauses))


class TestVerify:
    def test_valid_vector(self):
        inst = make([1], {2: [1]}, [[-2, 1], [2, -1]])
        outcome = verify_candidates(inst, {2: bf.var(1)})
        assert outcome.verdict == "VALID"

    def test_counterexample_components(self):
        inst = make([1], {2: [1]}, [[-2, 1], [2, -1]])
        outcome = verify_candidates(inst, {2: bf.not_(bf.var(1))})
        assert outcome.verdict == "COUNTEREXAMPLE"
        assert set(outcome.sigma_x) == {1}
        assert set(outcome.sigma_y) == {2}
        assert set(outcome.sigma_yp) == {2}
        # π[Y] must actually extend δ[X] to satisfy ϕ: y = x.
        assert outcome.sigma_y[2] == outcome.sigma_x[1]
        # δ[Y'] is the (wrong) candidate output.
        assert outcome.sigma_yp[2] == (not outcome.sigma_x[1])

    def test_false_detected(self):
        # ∀x ∃^{}y (y ↔ x) — with H empty the candidates are constants,
        # but verification FALSE only triggers when ϕ has no Y extension;
        # craft one: ϕ = (x) ∧ (¬x): no X assignment works... instead use
        # ϕ = x ↔ ¬x ... simplest: clause (x1) with x universal means
        # X=false has no extension.
        inst = make([1], {2: [1]}, [[1, 2]])
        # candidate FALSE: counterexample at x=0; extension check
        # ϕ ∧ x=0 → clause (1∨2) needs y=1: SAT, so repairable, not FALSE.
        outcome = verify_candidates(inst, {2: bf.FALSE})
        assert outcome.verdict == "COUNTEREXAMPLE"
        inst2 = make([1], {2: [1]}, [[1]])
        outcome2 = verify_candidates(inst2, {2: bf.TRUE})
        assert outcome2.verdict == "FALSE"

    def test_candidates_may_reference_other_ys(self):
        inst = make([1], {2: [1], 3: [1]}, [[-3, 2], [3, -2]])
        outcome = verify_candidates(inst, {2: bf.var(1), 3: bf.var(2)})
        assert outcome.verdict == "VALID"

    def test_empty_existentials_tautology(self):
        inst = DQBFInstance([1], {}, CNF([[1, -1]]))
        assert verify_candidates(inst, {}).verdict == "VALID"


class TestBuildCnf:
    def test_verification_cnf_structure(self):
        inst = make([1], {2: [1]}, [[-2, 1]])
        cnf = build_verification_cnf(inst, {2: bf.var(1)})
        assert cnf.num_vars > inst.matrix.num_vars  # Tseitin aux added
