"""BDD-based Skolem/chain synthesis (the Fried–Tabajara–Vardi lineage).

The paper's related work (§3) covers BDD-based Boolean functional
synthesis ([12]) and the elimination-based DQBF solvers operate on BDDs
(HQS2, DQBDD).  This engine implements the classical construction on
our ROBDD package:

    process y_m … y_1 (most-dependent first):
        F_i := BDD of ϕ_i
        f_i := F_i|_{y_i = 1}                     (candidate function)
        ϕ_{i-1} := F_i|_{y_i=0} ∨ F_i|_{y_i=1}    (∃-elimination)
    the instance is True iff ϕ_0 is the TRUE node.

Identical mathematics to the expression-based composition baseline, but
canonicity + sharing keep intermediate results small where expressions
blow up — the practical reason the elimination tools use BDDs.  Applies
to Skolem instances and inclusion-chain dependency structures; general
(incomparable) Henkin dependencies are out of scope, as for every
elimination-to-QBF approach without expansion.
"""

from repro.core.result import SynthesisResult, Status
from repro.formula.bdd import BDDManager, TRUE_NODE
from repro.utils.errors import ResourceBudgetExceeded
from repro.utils.timer import Deadline, Stopwatch


class BDDSynthesizer:
    """Eliminate existentials on ROBDDs; read functions off cofactors.

    Parameters
    ----------
    max_nodes:
        Guard on any intermediate BDD's node count (UNKNOWN on blow-up
        — the BDD engines' memory-out analogue).
    """

    name = "bdd"

    def __init__(self, max_nodes=500_000, seed=None):
        self.max_nodes = max_nodes
        self.seed = seed

    def run(self, instance, timeout=None):
        deadline = Deadline(timeout)
        stopwatch = Stopwatch().start()
        stats = {}
        try:
            result = self._run(instance, deadline, stats)
        except ResourceBudgetExceeded:
            result = SynthesisResult(Status.TIMEOUT, stats=stats,
                                     reason="budget exhausted")
        result.stats["wall_time"] = stopwatch.stop()
        return result

    def _run(self, instance, deadline, stats):
        order = self._elimination_order(instance)
        if order is None:
            return SynthesisResult(
                Status.UNKNOWN, stats=stats,
                reason="dependency sets are not a chain; BDD elimination "
                       "does not apply")

        # Variable order: universals first (interleaved by index), then
        # existentials most-dependent last — keeps cofactor levels low.
        manager = BDDManager(var_order=list(instance.universals)
                             + list(order))
        phi = manager.from_cnf(instance.matrix)
        stats["initial_nodes"] = manager.node_count(phi)

        functions_bdd = {}
        for y in reversed(order):
            deadline.check()
            f1 = manager.restrict(phi, y, True)
            f0 = manager.restrict(phi, y, False)
            functions_bdd[y] = f1
            phi = manager.or_(f0, f1)
            if manager.node_count(phi) > self.max_nodes:
                return SynthesisResult(
                    Status.UNKNOWN, stats=stats,
                    reason="BDD blow-up (> %d nodes)" % self.max_nodes)

        if phi != TRUE_NODE:
            return SynthesisResult(Status.FALSE, stats=stats,
                                   reason="∃Y ϕ is not valid over X")

        # Ground out: compose later functions into earlier ones so every
        # f_i mentions only its Henkin dependencies.
        final = {}
        y_set = set(instance.existentials)
        for y in order:
            bdd = functions_bdd[y]
            for ref in sorted(manager.support(bdd) & y_set,
                              key=order.index):
                bdd = manager.compose(bdd, ref, final[ref])
            final[y] = bdd
            illegal = manager.support(bdd) - instance.dependencies[y]
            if illegal:
                return SynthesisResult(
                    Status.UNKNOWN, stats=stats,
                    reason="composed function escapes dependency set")
        stats["function_nodes"] = {y: manager.node_count(b)
                                   for y, b in final.items()}
        functions = {y: manager.to_expr(b) for y, b in final.items()}
        return SynthesisResult(Status.SYNTHESIZED, functions=functions,
                               stats=stats)

    @staticmethod
    def _elimination_order(instance):
        """Existentials sorted into an inclusion chain, or ``None``."""
        order = sorted(instance.existentials,
                       key=lambda y: len(instance.dependencies[y]))
        previous = None
        for y in order:
            deps = instance.dependencies[y]
            if previous is not None and not (previous <= deps):
                return None
            previous = deps
        return order
