"""Tests for the CDCL solver: fuzz vs brute force, assumptions, cores,
budgets, incrementality, and heuristic configurations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formula.cnf import CNF
from repro.sat.solver import Solver, SAT, UNSAT, UNKNOWN, solve_cnf
from repro.utils.timer import Deadline

from tests.conftest import brute_force_satisfiable, random_cnf


def php(pigeons):
    """Pigeonhole principle: pigeons into pigeons−1 holes (UNSAT)."""
    holes = pigeons - 1
    cnf = CNF()

    def v(p, h):
        return (p - 1) * holes + h

    for p in range(1, pigeons + 1):
        cnf.add_clause([v(p, h) for h in range(1, holes + 1)])
    for h in range(1, holes + 1):
        for p1 in range(1, pigeons + 1):
            for p2 in range(p1 + 1, pigeons + 1):
                cnf.add_clause([-v(p1, h), -v(p2, h)])
    return cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve_cnf(CNF())[0] == SAT

    def test_single_unit(self):
        status, model = solve_cnf(CNF([[3]]))
        assert status == SAT and model[3] is True

    def test_contradicting_units(self):
        cnf = CNF([[1], [-1]])
        assert solve_cnf(cnf)[0] == UNSAT

    def test_tautological_clause_ignored(self):
        cnf = CNF()
        cnf.add_clause([1, -1])
        assert solve_cnf(cnf)[0] == SAT

    def test_model_satisfies_formula(self):
        cnf = CNF([[1, 2], [-1, 3], [-2, -3], [2, 3]])
        status, model = solve_cnf(cnf)
        assert status == SAT
        assert cnf.evaluate(model)

    def test_php_unsat(self):
        assert solve_cnf(php(5))[0] == UNSAT

    def test_php_satisfiable_variant(self):
        # pigeons into same number of holes is SAT
        cnf = CNF()
        n = 4
        for p in range(n):
            cnf.add_clause([p * n + h + 1 for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    cnf.add_clause([-(p1 * n + h + 1), -(p2 * n + h + 1)])
        assert solve_cnf(cnf)[0] == SAT


class TestFuzzAgainstBruteForce:
    def test_400_random_instances(self):
        rng = random.Random(2024)
        for trial in range(400):
            cnf = random_cnf(rng)
            expected = brute_force_satisfiable(cnf)
            status, payload = solve_cnf(cnf, rng=trial)
            assert status == (SAT if expected else UNSAT), \
                (trial, cnf.clauses)
            if status == SAT:
                assert cnf.evaluate(payload)

    def test_random_polarity_modes(self):
        rng = random.Random(7)
        for trial in range(60):
            cnf = random_cnf(rng)
            expected = brute_force_satisfiable(cnf)
            for mode in ("saved", "random", "true", "false", "weighted"):
                solver = Solver(cnf, rng=trial, polarity_mode=mode,
                                random_var_freq=0.3)
                assert (solver.solve() == SAT) == expected, (trial, mode)


class TestAssumptions:
    def test_sat_under_assumptions(self):
        cnf = CNF([[1, 2]])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model[2] is True

    def test_unsat_under_assumptions_with_core(self):
        cnf = CNF([[1, 2], [-1, 3], [-3, -2]])
        solver = Solver(cnf)
        status = solver.solve(assumptions=[1, 2])
        assert status == UNSAT
        assert set(solver.core) <= {1, 2}
        assert solver.core  # non-empty

    def test_core_is_sufficient(self):
        """Property: asserting the core literals alone keeps it UNSAT."""
        rng = random.Random(99)
        checked = 0
        for trial in range(200):
            cnf = random_cnf(rng, num_vars=6, num_clauses=18)
            assumptions = [rng.choice([1, -1]) * v
                           for v in rng.sample(range(1, 7), 3)]
            solver = Solver(cnf, rng=trial)
            if solver.solve(assumptions=assumptions) != UNSAT:
                continue
            core = list(solver.core)
            assert set(core) <= set(assumptions)
            recheck = Solver(cnf, rng=trial)
            assert recheck.solve(assumptions=core) == UNSAT
            checked += 1
        assert checked > 10  # the fuzz actually exercised UNSAT cases

    def test_root_unsat_has_empty_core(self):
        cnf = CNF([[1], [-1]])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[2]) == UNSAT
        assert solver.core == []

    def test_reuse_after_assumption_solve(self):
        cnf = CNF([[1, 2], [-1, 3]])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[1, -3]) == UNSAT
        assert solver.solve(assumptions=[1]) == SAT
        assert solver.model[3] is True
        assert solver.solve() == SAT

    def test_assumption_on_fresh_variable(self):
        cnf = CNF([[1]])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[5]) == SAT
        assert solver.model[5] is True


class TestBudgets:
    def test_conflict_budget_returns_unknown(self):
        solver = Solver(php(8))
        assert solver.solve(conflict_budget=5) == UNKNOWN

    def test_expired_deadline_returns_unknown(self):
        solver = Solver(php(9))
        deadline = Deadline(0.0)
        assert solver.solve(deadline=deadline) in (UNKNOWN, UNSAT)

    def test_solver_usable_after_unknown(self):
        solver = Solver(php(6))
        solver.solve(conflict_budget=3)
        assert solver.solve() == UNSAT


class TestIncremental:
    def test_adding_clauses_between_solves(self):
        solver = Solver(CNF([[1, 2]]))
        assert solver.solve() == SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() == UNSAT

    def test_ensure_vars_growth(self):
        solver = Solver()
        solver.ensure_vars(10)
        assert solver.num_vars == 10
        solver.add_clause([10])
        assert solver.solve() == SAT

    def test_statistics_accumulate(self):
        solver = Solver(php(6))
        solver.solve()
        assert solver.conflicts > 0
        assert solver.decisions > 0
        assert solver.propagations > 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=-5, max_value=5)
                         .filter(lambda l: l != 0),
                         min_size=1, max_size=3),
                min_size=1, max_size=20))
def test_solver_matches_brute_force_property(clauses):
    cnf = CNF(clauses, num_vars=5)
    expected = brute_force_satisfiable(cnf)
    status, payload = solve_cnf(cnf)
    assert (status == SAT) == expected
    if status == SAT:
        assert cnf.evaluate(payload)
