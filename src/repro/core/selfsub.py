"""Self-substitution fallback (inherited from Manthan/Manthan2).

When counterexample-driven repair keeps patching the same candidate, the
Manthan lineage replaces it wholesale with the *self-substituted*
function

    f_k := ϕ(X, Y∖{y_k}, y_k ↦ 1)

which is a correct choice whenever a correct choice exists for the given
valuation of the remaining variables (if ϕ can be satisfied with
``y_k = 1`` this picks 1; otherwise it picks 0, which must then work).

In the Henkin setting the construction is only sound when ``y_k`` may
depend on *everything* the formula mentions: its dependency set must be
the full universal set, and every other existential must be composable
below it (``H_j ⊆ H_k`` and no cycle through the tracker).  The fallback
therefore fires only for such "Skolem-positioned" variables — matching
the original tools, which implement it for Skolem synthesis.
"""

from repro.formula import boolfunc as bf
from repro.formula.boolfunc import cnf_to_expr


def run_self_substitution(ctx):
    """Pipeline entry: retire over-repaired candidates from the context.

    Every candidate whose repair count crossed
    ``config.self_substitution_threshold`` is replaced by its
    self-substitution and moved into ``ctx.non_repairable``; each
    successful replacement may add dependency edges, so the total order
    is recomputed immediately (as the pre-pipeline engine did).
    Returns the number of candidates retired.
    """
    from repro.core.order import find_order

    config = ctx.config
    retired = 0
    for yk, count in list(ctx.repair_counts.items()):
        if count <= config.self_substitution_threshold or \
                yk in ctx.non_repairable:
            continue
        applied = self_substitute(
            ctx.instance, ctx.candidates, ctx.tracker, yk,
            max_dag_size=config.self_substitution_max_dag)
        if applied:
            ctx.non_repairable[yk] = ctx.candidates[yk]
            ctx.stats["self_substitutions"] = \
                ctx.stats.get("self_substitutions", 0) + 1
            retired += 1
            # New edges may invalidate the old total order.
            ctx.order = find_order(ctx.instance, ctx.tracker)
    return retired


def can_self_substitute(instance, tracker, yk):
    """Is the self-substitution sound for ``yk`` on this instance?"""
    if instance.dependencies[yk] != frozenset(instance.universals):
        return False
    for yj in instance.existentials:
        if yj == yk:
            continue
        if not (instance.dependencies[yj] <= instance.dependencies[yk]):
            return False
        if not tracker.may_use(yk, yj):
            return False
    return True


def self_substitute(instance, candidates, tracker, yk, max_dag_size=50_000):
    """Replace ``candidates[yk]`` with ``ϕ|_{y_k=1}``.

    Returns ``True`` on success (mutating ``candidates`` and recording
    the new dependencies in ``tracker``); ``False`` when the guard or the
    soundness conditions reject the substitution.
    """
    if not can_self_substitute(instance, tracker, yk):
        return False
    phi = cnf_to_expr(instance.matrix)
    replacement = phi.cofactor(yk, True)
    if replacement.dag_size() > max_dag_size:
        return False
    candidates[yk] = replacement
    used = replacement.support() & set(instance.existentials)
    if used:
        tracker.record_use(yk, used)
    return True
