"""Tests for the append-only lease log behind elastic campaigns.

Every corner of the protocol that decides job ownership is pinned
here with explicit ``now=`` timestamps, because resolution must be a
pure function of the log: two workers (or a later replay) reading the
same bytes must agree on every owner.
"""

import json
import os

import pytest

from repro.portfolio.leases import (
    DEFAULT_LEASE_DURATION,
    HEARTBEAT_FRACTION,
    LeaseLog,
    lease_log_path,
)
from repro.utils.errors import ReproError

JOB = ("manthan3", "inst-a")
OTHER = ("expansion", "inst-a")


@pytest.fixture
def log(tmp_path):
    return LeaseLog(str(tmp_path / "camp.jsonl.leases"))


class TestPaths:
    def test_lease_log_lives_next_to_the_store(self):
        assert lease_log_path("/x/camp.jsonl") == "/x/camp.jsonl.leases"


class TestClaims:
    def test_claim_on_empty_log_wins(self, log):
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        state = log.resolve()[JOB]
        assert state.owner == "w1"
        assert state.deadline == 130.0
        assert state.claims == 1
        assert state.reclaims == 0

    def test_simultaneous_claims_first_writer_wins(self, log):
        # Two workers bid for the same job with the *same* timestamp;
        # append order is the only tiebreak, and both bidders reach the
        # same verdict by re-reading the log.
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        assert not log.claim(JOB, "w2", duration=30, now=100.0)
        state = log.resolve()[JOB]
        assert state.owner == "w1"
        assert state.claims == 1  # the losing bid transferred nothing

    def test_losing_bid_visible_identically_to_third_party(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.claim(JOB, "w2", duration=30, now=100.0)
        observer = LeaseLog(log.path)
        assert observer.resolve()[JOB].owner == "w1"

    def test_claims_on_distinct_jobs_do_not_interact(self, log):
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        assert log.claim(OTHER, "w2", duration=30, now=100.0)
        states = log.resolve()
        assert states[JOB].owner == "w1"
        assert states[OTHER].owner == "w2"

    def test_self_reclaim_acts_as_renewal(self, log):
        # A restarted worker with the same id may re-claim its own
        # live lease; the deadline just extends.
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        assert log.claim(JOB, "w1", duration=30, now=110.0)
        state = log.resolve()[JOB]
        assert state.owner == "w1"
        assert state.deadline == 140.0
        assert state.claims == 1  # no ownership transfer happened


class TestExpiryAndReclaim:
    def test_expired_lease_is_reclaimed(self, log):
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        # 131 > deadline 130: w1 stopped heartbeating, w2 takes over.
        assert log.claim(JOB, "w2", duration=30, now=131.0)
        state = log.resolve()[JOB]
        assert state.owner == "w2"
        assert state.claims == 2
        assert state.reclaims == 1

    def test_live_lease_cannot_be_reclaimed(self, log):
        assert log.claim(JOB, "w1", duration=30, now=100.0)
        assert not log.claim(JOB, "w2", duration=30, now=129.0)
        assert log.resolve()[JOB].owner == "w1"

    def test_expiry_compares_stored_deadline_to_claim_ts(self, log):
        # Resolution never consults the reader's clock: the verdict is
        # decided by the claim record's own timestamp, so replaying the
        # log at any later time resolves identically.
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.claim(JOB, "w2", duration=30, now=131.0)
        replay = LeaseLog(log.path)
        state = replay.resolve()[JOB]
        assert state.owner == "w2"
        assert state.reclaims == 1

    def test_free_and_held_track_the_local_clock(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        state = log.resolve()[JOB]
        assert state.held(now=120.0)
        assert not state.free(now=120.0)
        assert not state.held(now=131.0)
        assert state.free(now=131.0)


class TestHeartbeat:
    def test_renewal_defeats_a_would_be_reclaimer(self, log):
        # The holder heartbeats before its deadline; a claim that would
        # have won against the *original* deadline now loses.
        log.claim(JOB, "w1", duration=0.2, now=100.0)
        log.renew(JOB, "w1", duration=0.2, now=100.15)
        assert not log.claim(JOB, "w2", duration=0.2, now=100.25)
        assert log.resolve()[JOB].owner == "w1"

    def test_without_renewal_the_same_claim_wins(self, log):
        # Control for the test above: identical timeline minus the
        # heartbeat, and the stalled worker loses its job.
        log.claim(JOB, "w1", duration=0.2, now=100.0)
        assert log.claim(JOB, "w2", duration=0.2, now=100.25)
        state = log.resolve()[JOB]
        assert state.owner == "w2"
        assert state.reclaims == 1

    def test_renewal_from_non_holder_is_ignored(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.renew(JOB, "w2", duration=30, now=110.0)
        state = log.resolve()[JOB]
        assert state.owner == "w1"
        assert state.deadline == 130.0

    def test_heartbeat_period_gives_several_chances(self):
        # A holder renewing every duration/HEARTBEAT_FRACTION seconds
        # must miss multiple beats before the lease can expire.
        assert DEFAULT_LEASE_DURATION / HEARTBEAT_FRACTION * 2 \
            < DEFAULT_LEASE_DURATION


class TestReleaseAndComplete:
    def test_release_frees_the_job_immediately(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.release(JOB, "w1", now=101.0)
        state = log.resolve()[JOB]
        assert state.owner is None
        assert state.free(now=101.0)
        # and a fresh (non-expired) claim is a claim, not a reclaim
        assert log.claim(JOB, "w2", duration=30, now=102.0)
        assert log.resolve()[JOB].reclaims == 0

    def test_release_from_non_holder_is_ignored(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.release(JOB, "w2", now=101.0)
        assert log.resolve()[JOB].owner == "w1"

    def test_first_complete_is_final(self, log):
        # A stale worker whose lease was reclaimed mid-run may publish
        # a late complete; it must never displace the reclaimer's.
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.claim(JOB, "w2", duration=30, now=131.0)  # reclaim
        log.complete(JOB, "w2", now=135.0)
        log.complete(JOB, "w1", now=136.0)  # late, loses
        state = log.resolve()[JOB]
        assert state.done
        assert state.done_by == "w2"

    def test_done_job_rejects_further_claims(self, log):
        log.claim(JOB, "w1", duration=30, now=100.0)
        log.complete(JOB, "w1", now=101.0)
        assert not log.claim(JOB, "w2", duration=30, now=200.0)
        assert not log.resolve()[JOB].free(now=200.0)


class TestTornLines:
    def test_torn_line_mid_file_is_skipped(self, log):
        # A SIGKILL mid-append leaves a torn line that later appends
        # from live workers bury mid-file; lease readers skip it (a
        # dropped claim is always safe — at worst the job expires and
        # is reclaimed).
        log.claim(JOB, "w1", duration=30, now=100.0)
        with open(log.path, "ab") as handle:
            handle.write(b'{"type": "lease", "op": "cl')  # torn
        log.claim(OTHER, "w2", duration=30, now=100.0)
        states = log.resolve()
        assert states[JOB].owner == "w1"
        assert states[OTHER].owner == "w2"

    def test_malformed_records_are_skipped(self, log):
        with open(log.path, "ab") as handle:
            handle.write(json.dumps(
                {"type": "lease", "op": "claim", "job": "not-a-pair",
                 "worker": "w1"}).encode() + b"\n")
        log.claim(JOB, "w1", duration=30, now=100.0)
        assert log.resolve()[JOB].owner == "w1"

    def test_append_is_one_atomic_write(self, log):
        # Each record is exactly one newline-terminated line however
        # many processes interleave appends.
        for i in range(50):
            log.claim(JOB, "w%d" % i, duration=30, now=100.0)
        with open(log.path, "rb") as handle:
            data = handle.read()
        assert data.endswith(b"\n")
        assert len(data.splitlines()) == 50


class TestMeta:
    def test_first_meta_wins_and_matching_join_passes(self, log):
        first = log.ensure_meta({"timeout": 10.0, "seed": 7})
        again = log.ensure_meta({"timeout": 10.0, "seed": 7})
        assert first["timeout"] == again["timeout"] == 10.0

    def test_mismatched_join_is_refused(self, log):
        log.ensure_meta({"timeout": 10.0, "seed": 7})
        with pytest.raises(ReproError, match="timeout"):
            log.ensure_meta({"timeout": 20.0, "seed": 7})
        with pytest.raises(ReproError, match="seed"):
            log.ensure_meta({"timeout": 10.0, "seed": 8})

    def test_missing_log_resolves_empty(self, log):
        assert not log.exists()
        assert log.resolve() == {}
        assert log.read_meta() is None
