"""Multi-engine execution and Virtual-Best-Synthesizer analytics.

The paper's evaluation (§6) centres on the VBS: an instance counts as
solved by a portfolio if at least one member synthesizes functions for
it, at the minimum member time.  This package runs engine suites over
instance lists (certificate-checking every claimed vector) and computes
the quantities behind Figure 6 (cactus), Figures 7–10 (scatters) and the
solved/unique/fastest counts quoted in the text.
"""

from repro.portfolio.runner import RunRecord, ResultTable, run_portfolio
from repro.portfolio.vbs import (
    vbs_times,
    cactus_series,
    scatter_pairs,
    solved_counts,
    unique_solves,
    fastest_counts,
    within_slack_of_vbs,
    unsolved_breakdown,
)

__all__ = [
    "RunRecord",
    "ResultTable",
    "run_portfolio",
    "vbs_times",
    "cactus_series",
    "scatter_pairs",
    "solved_counts",
    "unique_solves",
    "fastest_counts",
    "within_slack_of_vbs",
    "unsolved_breakdown",
]
