"""The two-tier certified solution cache.

Tier 1 is an in-process LRU (an ``OrderedDict`` capped at
``max_memory_entries``); tier 2 is an optional on-disk store shared by
every process pointing at the same path:

* ``<path>`` — an append-only JSONL **index**.  Lines are
  ``{"type": "entry", "fp": digest, "status": ..., ...}`` or
  ``{"type": "evict", "fp": digest}``; replaying the file in order
  (last operation per digest wins) reconstructs the live index, exactly
  like the lease log's pure fold.  Appends use the same ``O_APPEND``
  single-``write`` discipline as
  :meth:`repro.portfolio.leases.LeaseLog._append`, so concurrent
  writers — pool workers, elastic workers, even across hosts on a
  POSIX-append filesystem — never interleave bytes.  Readers skip
  undecodable lines (a torn tail from a killed writer only loses
  itself): dropping a cache line is always safe because a miss just
  means a cold solve, and a *wrong* line can at worst produce a hit
  that fails re-certification and is evicted.
* ``<path>.payloads/<digest>.aag`` — one AIGER ASCII file per
  ``SYNTHESIZED`` entry holding the canonical Skolem vector
  (written to a temp file and ``os.replace``\\ d, so readers never see
  a half-written payload; concurrent writers of the *same* digest both
  hold re-certifiable vectors, so last-writer-wins is sound).
  ``FALSE`` entries carry their universal witness inline in the index
  line instead.

Corruption anywhere — unreadable payload, malformed index value,
mismatched shapes — degrades to a miss plus an eviction, never an
error and never a wrong answer (hits are re-certified by the caller;
see :mod:`repro.cache.resolve`).
"""

import json
import os
from collections import OrderedDict

from repro.core.result import Status
from repro.formula.aig import functions_to_aig, read_henkin_aiger

__all__ = ["CacheEntry", "SolutionCache"]

#: Default tier-1 capacity (entries, not bytes: vectors are small DAGs).
DEFAULT_MEMORY_ENTRIES = 256


class CacheEntry:
    """One cached decisive outcome, in canonical numbering.

    ``status`` is ``Status.SYNTHESIZED`` (``functions`` holds the
    canonical ``{y: BoolExpr}`` vector) or ``Status.FALSE``
    (``witness`` holds the canonical ``{x: bool}`` falsity witness).
    """

    __slots__ = ("status", "functions", "witness")

    def __init__(self, status, functions=None, witness=None):
        self.status = status
        self.functions = functions
        self.witness = witness

    def __repr__(self):
        return "CacheEntry(%s)" % (self.status,)


class SolutionCache:
    """Two-tier fingerprint-keyed cache of certified solutions.

    ``path=None`` keeps the cache purely in-process (tier 1 only).
    ``counters`` tracks ``hits`` / ``misses`` / ``stores`` /
    ``evictions`` for reporting; hit/miss here means raw lookup
    outcome — the certification verdict on a hit is the caller's
    (:func:`repro.cache.resolve.cache_lookup`) business.
    """

    def __init__(self, path=None,
                 max_memory_entries=DEFAULT_MEMORY_ENTRIES):
        self.path = path
        self.payload_dir = (path + ".payloads") if path else None
        self.max_memory_entries = max_memory_entries
        self._lru = OrderedDict()
        self._disk = None  # lazily loaded {digest: index line dict}
        self.counters = {"hits": 0, "misses": 0, "stores": 0,
                         "evictions": 0}

    # ------------------------------------------------------------------
    # on-disk index (same append discipline as LeaseLog)
    # ------------------------------------------------------------------
    def _append(self, data):
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        line = (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")
        if self._tail_is_torn():
            # A predecessor died mid-append; start a fresh line so the
            # torn record only loses itself.  The check-then-write race
            # at worst yields a blank line, which readers skip.
            line = b"\n" + line
        fd = os.open(self.path,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def _tail_is_torn(self):
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def _load_index(self):
        if self._disk is not None:
            return self._disk
        self._disk = {}
        if self.path is None:
            return self._disk
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return self._disk
        for line in raw.decode("utf-8", "replace").splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn/garbled line: see module docstring
            if not isinstance(data, dict):
                continue
            digest = data.get("fp")
            if not isinstance(digest, str):
                continue
            kind = data.get("type")
            if kind == "entry":
                self._disk[digest] = data
            elif kind == "evict":
                self._disk.pop(digest, None)
        return self._disk

    def _payload_path(self, digest):
        return os.path.join(self.payload_dir, digest + ".aag")

    def _read_entry(self, data):
        """Materialize a :class:`CacheEntry` from one index line.

        Raises on any malformed content — the caller converts that
        into an eviction.
        """
        status = data["status"]
        if status == Status.SYNTHESIZED:
            with open(self._payload_path(data["fp"])) as handle:
                functions = read_henkin_aiger(handle.read())
            return CacheEntry(Status.SYNTHESIZED, functions=functions)
        if status == Status.FALSE:
            witness = {int(x): bool(v)
                       for x, v in data["witness"].items()}
            return CacheEntry(Status.FALSE, witness=witness)
        raise ValueError("uncacheable status %r" % (status,))

    # ------------------------------------------------------------------
    # cache operations
    # ------------------------------------------------------------------
    def get(self, digest):
        """The live :class:`CacheEntry` for ``digest``, or ``None``.

        A disk entry that fails to materialize (missing or corrupt
        payload, malformed witness) is evicted and reported as a miss.
        """
        entry = self._lru.get(digest)
        if entry is not None:
            self._lru.move_to_end(digest)
            self.counters["hits"] += 1
            return entry
        data = self._load_index().get(digest)
        if data is not None:
            try:
                entry = self._read_entry(data)
            except Exception:
                self.evict(digest)
                self.counters["misses"] += 1
                return None
            self._remember(digest, entry)
            self.counters["hits"] += 1
            return entry
        self.counters["misses"] += 1
        return None

    def put(self, digest, status, functions=None, witness=None):
        """Record one decisive outcome under ``digest``.

        ``functions``/``witness`` must already be in canonical
        numbering.  Re-putting a digest overwrites (last writer wins —
        both writers held re-certifiable entries).
        """
        if status not in (Status.SYNTHESIZED, Status.FALSE):
            raise ValueError("only SYNTHESIZED/FALSE outcomes are "
                             "cacheable, not %r" % (status,))
        entry = CacheEntry(status, functions=functions, witness=witness)
        self._remember(digest, entry)
        self.counters["stores"] += 1
        if self.path is None:
            return
        line = {"type": "entry", "fp": digest, "status": str(status)}
        if status == Status.SYNTHESIZED:
            os.makedirs(self.payload_dir, exist_ok=True)
            payload = self._payload_path(digest)
            tmp = "%s.tmp-%d" % (payload, os.getpid())
            with open(tmp, "w") as handle:
                handle.write(functions_to_aig(functions).to_aag())
            os.replace(tmp, payload)
        else:
            line["witness"] = {str(x): bool(v)
                               for x, v in witness.items()}
        self._append(line)
        self._load_index()[digest] = line

    def evict(self, digest):
        """Drop ``digest`` from both tiers (appending a tombstone)."""
        self._lru.pop(digest, None)
        self.counters["evictions"] += 1
        if self.path is None:
            return
        # Tombstone unconditionally: a concurrent writer's entry line
        # may not be in our index snapshot yet, and replay folds
        # evictions in file order anyway.
        self._append({"type": "evict", "fp": digest})
        self._load_index().pop(digest, None)

    def _remember(self, digest, entry):
        self._lru[digest] = entry
        self._lru.move_to_end(digest)
        while len(self._lru) > self.max_memory_entries:
            self._lru.popitem(last=False)

    def __len__(self):
        """Live entries visible to this process (both tiers)."""
        keys = set(self._lru)
        if self.path is not None:
            keys.update(self._load_index())
        return len(keys)

    def __repr__(self):
        return "SolutionCache(%r, %d entries)" % (self.path, len(self))
