"""Shared result types for the MaxSAT layer."""


class SoftClause:
    """One weight-1 soft clause plus bookkeeping used by the solvers."""

    __slots__ = ("lits", "index")

    def __init__(self, lits, index):
        self.lits = tuple(lits)
        self.index = index

    def satisfied_by(self, model):
        from repro.formula.cnf import lit_var, lit_sign

        return any(model[lit_var(l)] == lit_sign(l) for l in self.lits)


class MaxSatResult:
    """Outcome of a MaxSAT call.

    Attributes
    ----------
    satisfiable:
        ``False`` iff the hard clauses alone are unsatisfiable.
    cost:
        Number of falsified soft clauses in the optimal model.
    model:
        ``{var: bool}`` over the hard formula's variable range.
    falsified:
        Indices (into the caller's soft list) of falsified soft clauses.
    """

    def __init__(self, satisfiable, cost=None, model=None, falsified=None):
        self.satisfiable = satisfiable
        self.cost = cost
        self.model = model
        self.falsified = falsified if falsified is not None else []

    def __repr__(self):
        if not self.satisfiable:
            return "MaxSatResult(UNSAT hard clauses)"
        return "MaxSatResult(cost=%d, falsified=%r)" % (self.cost, self.falsified)
