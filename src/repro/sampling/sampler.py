"""Randomized CDCL sampling with adaptive polarity weighting."""

import warnings

from repro.formula.bitvec import SampleMatrix
from repro.sat.backend import BackendUnavailableError, \
    backend_capabilities, make_backend
from repro.sat.solver import SAT, UNSAT
from repro.utils.errors import ResourceBudgetExceeded
from repro.utils.rng import make_rng, spawn

#: Backend failures the sampler recovers from via its fallback chain.
_ORACLE_FAILURES = (BackendUnavailableError, MemoryError)

#: Backend names already warned about (capability fallback is loud, but
#: only once per requested backend, not once per Sampler).
_FALLBACK_WARNED = set()


class Sampler:
    """Draw satisfying assignments of a CNF.

    Parameters
    ----------
    cnf:
        The specification ϕ.
    rng:
        Seed or RNG for reproducible sampling.
    weighted_vars:
        Variables whose polarity weight is adapted (Manthan biases the
        existential Y variables); others branch uniformly at random.
    pilot:
        Number of pilot samples used to estimate marginals before
        adaptive weights kick in.
    bias_floor / bias_ceiling:
        Clamp for adapted weights; Manthan uses 0.1/0.9 so no variable is
        ever sampled one-sidedly.
    incremental:
        Keep **one** solver across draws (the default): learnt clauses
        and branching activity persist, and each draw only re-seeds the
        solver's RNG and refreshes the polarity weights — diversity
        comes from the randomized polarity/branching, not from
        rebuilding.  ``False`` restores the fresh-solver-per-draw
        fallback.
    backend:
        :mod:`repro.sat.backend` name of the sampling oracle.  Sampling
        needs the weighted-polarity heuristics, so a backend that does
        not advertise the ``"weighted_polarity"`` capability (e.g.
        ``pysat``) keeps the reference ``python`` solver — loudly: a
        one-time :class:`RuntimeWarning` is emitted and the requested
        name is reported under ``stats()["backend_fallback"]``.
    fallbacks:
        Backend names tried, in order, when the live sampling backend
        fails mid-draw (:class:`~repro.sat.backend.
        BackendUnavailableError` or ``MemoryError``): the sampler
        rebuilds on the next capable chain entry — carrying over the
        dead solver's RNG object and the adapted polarity weights —
        and retries the draw.  Entries lacking ``"weighted_polarity"``
        are skipped (sampling cannot run on them).  Empty means fail
        fast.
    """

    def __init__(self, cnf, rng=None, weighted_vars=(), pilot=10,
                 bias_floor=0.1, bias_ceiling=0.9, incremental=True,
                 backend="python", fallbacks=()):
        self.cnf = cnf
        self.rng = make_rng(rng)
        self.weighted_vars = list(weighted_vars)
        self.pilot = pilot
        self.bias_floor = bias_floor
        self.bias_ceiling = bias_ceiling
        self.incremental = incremental
        if "weighted_polarity" in backend_capabilities(backend):
            self.backend = backend
            self.backend_fallback = None
        else:
            self.backend = "python"
            self.backend_fallback = backend
            if backend not in _FALLBACK_WARNED:
                _FALLBACK_WARNED.add(backend)
                warnings.warn(
                    "SAT backend %r lacks the 'weighted_polarity' "
                    "capability; sampling falls back to the reference "
                    "'python' solver" % backend,
                    RuntimeWarning, stacklevel=2)
        self._fallbacks = list(fallbacks)
        self.failovers = 0
        self._weights = {}
        self._true_counts = {v: 0 for v in self.weighted_vars}
        self._drawn = 0
        self._solver = None
        self._retired_conflicts = 0
        self.calls = 0

    def _build_solver(self, rng):
        return make_backend(
            self.backend,
            self.cnf,
            rng=rng,
            polarity_mode="weighted",
            random_var_freq=0.2,
            polarity_weights=dict(self._weights),
        )

    def _solver_for(self, salt):
        """The draw's solver: persistent (rerandomized) or fresh."""
        if not self.incremental:
            return self._build_solver(spawn(self.rng, salt))
        if self._solver is None:
            self._solver = self._build_solver(spawn(self.rng, salt))
        else:
            self._solver.rng = spawn(self.rng, salt)
            self._solver.polarity_weights.clear()
            self._solver.polarity_weights.update(self._weights)
        return self._solver

    def _failover(self, exc):
        """Swap the dead sampling solver for the next chain backend.

        The replacement inherits the dead solver's RNG object and the
        current adapted weights; its conflicts are banked so
        :meth:`stats` stays monotone.  Chain entries without the
        ``"weighted_polarity"`` capability are skipped.  Re-raises
        ``exc`` once the chain is exhausted.
        """
        dead, self._solver = self._solver, None
        rng = getattr(dead, "rng", None) if dead is not None else None
        if dead is not None:
            try:
                self._retired_conflicts += dead.stats()["conflicts"]
            except Exception:
                pass
        while self._fallbacks:
            name = self._fallbacks.pop(0)
            if "weighted_polarity" not in backend_capabilities(name):
                continue
            self.backend = name
            if self.incremental:
                try:
                    self._solver = self._build_solver(
                        rng if rng is not None else spawn(self.rng, 0))
                except BackendUnavailableError:
                    continue
            self.failovers += 1
            return
        raise exc

    def _update_weights(self, model):
        self._drawn += 1
        for v in self.weighted_vars:
            if model[v]:
                self._true_counts[v] += 1
        if self._drawn >= self.pilot:
            for v in self.weighted_vars:
                p = self._true_counts[v] / self._drawn
                self._weights[v] = min(self.bias_ceiling,
                                       max(self.bias_floor, p))

    def draw(self, count, deadline=None, conflict_budget=None,
             packed=False):
        """Return up to ``count`` models (fewer only if ϕ is UNSAT).

        Each model is a ``{var: bool}`` dict over the CNF's variables;
        with ``packed=True`` the models are packed directly into a
        column-major :class:`~repro.formula.bitvec.SampleMatrix` (no
        per-sample dicts are retained) — the solver stream, weight
        adaptation, and drawn models are identical either way.  Raises
        :class:`ResourceBudgetExceeded` if a SAT call exhausts its
        budget.  Backend failure mid-draw triggers a failover through
        the fallback chain and a retry of the interrupted draw.
        """
        samples = SampleMatrix() if packed else []
        for i in range(count):
            if deadline is not None:
                deadline.check()
            solver = self._solver_for(i)
            while True:
                self.calls += 1
                try:
                    status = solver.solve(conflict_budget=conflict_budget,
                                          deadline=deadline)
                except _ORACLE_FAILURES as exc:
                    rng = getattr(solver, "rng", None)
                    if not self.incremental:
                        self._solver = solver  # let _failover bank it
                    self._failover(exc)
                    # Retry on the replacement at the *same* RNG stream
                    # position — the draw consumes no extra parent
                    # entropy, so a recovered run replays the
                    # fault-free sample stream exactly.
                    if self.incremental:
                        solver = self._solver
                    elif rng is not None:
                        solver = self._build_solver(rng)
                    else:
                        solver = self._solver_for(i)
                    continue
                break
            if not self.incremental:
                # Fresh solvers die with the draw; bank their conflicts
                # so both modes report comparable oracle work.
                self._retired_conflicts += solver.stats()["conflicts"]
            if status == UNSAT:
                break
            if status != SAT:
                raise ResourceBudgetExceeded("sampling budget exceeded")
            samples.append(solver.model)
            self._update_weights(solver.model)
        return samples

    def stats(self):
        """Oracle counters: calls and conflicts (both modes).

        ``conflicts`` accumulates across fresh solvers in
        ``incremental=False`` mode and reads the live solver otherwise,
        so the two modes report comparable totals.
        """
        conflicts = self._retired_conflicts
        if self._solver is not None:
            conflicts += self._solver.stats()["conflicts"]
        return {"calls": self.calls, "conflicts": conflicts,
                "backend": self.backend,
                "backend_fallback": self.backend_fallback,
                "failovers": self.failovers}


def sample_models(cnf, count, rng=None, weighted_vars=(), deadline=None,
                  conflict_budget=None, incremental=True,
                  backend="python"):
    """One-shot convenience wrapper around :class:`Sampler`."""
    sampler = Sampler(cnf, rng=rng, weighted_vars=weighted_vars,
                      incremental=incremental, backend=backend)
    return sampler.draw(count, deadline=deadline,
                        conflict_budget=conflict_budget)
