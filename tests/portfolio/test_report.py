"""Tests for the evaluation report renderer."""

from repro.core.result import Status
from repro.portfolio.report import (
    elastic_summary,
    race_summary,
    render_report,
)
from repro.portfolio.runner import ResultTable, RunRecord


def build_table():
    records = []

    def rec(engine, inst, status, t):
        certified = True if status == Status.SYNTHESIZED else None
        records.append(RunRecord(engine, inst, status, t,
                                 certified=certified))

    rec("manthan3", "easy", Status.SYNTHESIZED, 1.0)
    rec("expansion", "easy", Status.SYNTHESIZED, 0.5)
    rec("pedant", "easy", Status.SYNTHESIZED, 2.0)
    rec("manthan3", "m3only", Status.SYNTHESIZED, 3.0)
    rec("expansion", "m3only", Status.UNKNOWN, 0.1)
    rec("pedant", "m3only", Status.TIMEOUT, 10.0)
    rec("manthan3", "hard", Status.UNKNOWN, 0.2)
    rec("expansion", "hard", Status.SYNTHESIZED, 1.5)
    rec("pedant", "hard", Status.SYNTHESIZED, 1.2)
    return ResultTable(records, timeout=10.0)


class TestRenderReport:
    def test_sections_present(self):
        lines = render_report(build_table())
        text = "\n".join(lines)
        for section in ("solved counts", "virtual best synthesizer",
                        "pairwise comparisons", "fastest engine",
                        "unique solves", "unsolved-but-solvable"):
            assert section in text, section

    def test_counts_correct(self):
        text = "\n".join(render_report(build_table()))
        counts_line = next(l for l in text.splitlines()
                           if "manthan3" in l and "/" in l)
        assert "2 / 3" in counts_line
        assert "VBS(all): 3 solved (+1 from manthan3)" in text

    def test_unique_solves_listed(self):
        text = "\n".join(render_report(build_table()))
        assert "m3only" in text

    def test_display_names(self):
        lines = render_report(build_table(),
                              display_names={"expansion": "HQS2*"})
        text = "\n".join(lines)
        assert "HQS2*" in text

    def test_incompleteness_breakdown(self):
        text = "\n".join(render_report(build_table()))
        assert "incompleteness (UNKNOWN): 1" in text

    def test_phase_breakdown_absent_without_phase_stats(self):
        text = "\n".join(render_report(build_table()))
        assert "per-phase time breakdown" not in text

    def test_phase_breakdown_rendered(self):
        table = build_table()
        table.add(RunRecord(
            "manthan3", "staged", Status.SYNTHESIZED, 1.0,
            certified=True,
            stats={"phases": {"sample": 0.25, "learn": 0.50,
                              "verify_repair": 0.25}}))
        text = "\n".join(render_report(table))
        assert "per-phase time breakdown" in text
        assert "learn" in text
        assert "50.0%" in text


def race_record(inst, winner, saved):
    return RunRecord(
        "race:manthan3+expansion", inst, Status.SYNTHESIZED, 1.0,
        certified=True,
        stats={"race": {"group": "race:manthan3+expansion",
                        "members": ["manthan3", "expansion"],
                        "winner": winner, "winner_time": 1.0,
                        "outcomes": {}, "saved": saved}})


def elastic_record(engine, inst, worker, claims=1, reclaims=0):
    return RunRecord(
        engine, inst, Status.SYNTHESIZED, 1.0, certified=True,
        stats={"worker": {"id": worker, "host": "h"},
               "lease": {"claims": claims, "reclaims": reclaims,
                         "worker": worker}})


class TestRaceSection:
    def test_absent_without_race_records(self):
        assert race_summary(build_table()) is None
        assert "engine racing" not in "\n".join(
            render_report(build_table()))

    def test_wins_and_saved_aggregate(self):
        table = ResultTable([race_record("a", "manthan3", 2.0),
                             race_record("b", "manthan3", 1.5),
                             race_record("c", "expansion", 0.0)],
                            timeout=10.0)
        summary = race_summary(table)
        assert summary["races"] == 3
        assert summary["wins"] == {"manthan3": 2, "expansion": 1}
        assert summary["saved"] == 3.5

    def test_rendered_section(self):
        table = build_table()
        table.add(race_record("raced", "expansion", 4.25))
        text = "\n".join(render_report(table))
        assert "-- engine racing --" in text
        assert "raced runs:        1" in text
        assert "wins expansion" in text
        assert "4.250 s" in text


class TestElasticSection:
    def test_absent_without_lease_stamps(self):
        assert elastic_summary(build_table()) is None
        assert "elastic campaign" not in "\n".join(
            render_report(build_table()))

    def test_per_worker_counts_and_reclaims(self):
        table = ResultTable(
            [elastic_record("manthan3", "a", "w1"),
             elastic_record("manthan3", "b", "w1", claims=2,
                            reclaims=1),
             elastic_record("expansion", "a", "w2")],
            timeout=10.0)
        summary = elastic_summary(table)
        assert summary["runs"] == 3
        assert summary["workers"] == {"w1": 2, "w2": 1}
        assert summary["claims"] == 4
        assert summary["reclaims"] == 1

    def test_rendered_section(self):
        table = build_table()
        table.add(elastic_record("manthan3", "leased", "w1", claims=2,
                                 reclaims=1))
        text = "\n".join(render_report(table))
        assert "-- elastic campaign --" in text
        assert "worker w1" in text
        assert "reclaimed leases:  1 (of 2 claims)" in text

    def test_merged_elastic_campaign_renders_both_ids(self, tmp_path):
        # end to end: a real two-id elastic store renders per-worker
        # counts straight from the merged canonical file
        from repro.dqbf.instance import DQBFInstance
        from repro.formula.cnf import CNF
        from repro.portfolio.elastic import run_elastic_worker
        from repro.portfolio.store import CampaignStore

        cnf = CNF([[-2, 1], [2, -1]])
        instances = [DQBFInstance([1], {2: [1]}, cnf, name="i")]
        store = str(tmp_path / "camp.jsonl")
        run_elastic_worker(instances, ["manthan3"], store,
                           worker_id="w1", timeout=10.0, seed=7)
        text = "\n".join(render_report(CampaignStore(store).load()))
        assert "-- elastic campaign --" in text
        assert "worker w1" in text
