"""Semantic unique-definability checks and definition extraction.

Padoa's method: ``y`` is uniquely defined by the variable set ``H`` under
ϕ iff the *two-copy* formula

    ϕ(V) ∧ ϕ(V′) ∧ (H ↔ H′) ∧ y ∧ ¬y′

is unsatisfiable (two models agreeing on ``H`` can never disagree on
``y``).  Extraction then builds the truth table of the forced value row by
row — one SAT query per ``H`` assignment — and returns it as a DNF
expression.  This replaces the interpolation machinery of UNIQUE with the
same input/output contract; it is exact but exponential in ``|H|``, so
callers bound it via ``max_table_bits``.
"""

from repro.formula import boolfunc as bf
from repro.formula.cnf import CNF
from repro.sat.solver import Solver, SAT, UNSAT
from repro.utils.errors import ResourceBudgetExceeded


def _two_copy_formula(cnf, shared, y):
    """Build ``ϕ(V) ∧ ϕ(V′) ∧ (shared ↔ shared′) ∧ y ∧ ¬y′``."""
    out = cnf.copy()
    offset = out.num_vars
    mapping = {v: v + offset for v in range(1, cnf.num_vars + 1)}
    primed = cnf.relabeled(mapping)
    out.num_vars = offset + cnf.num_vars
    for clause in primed.clauses:
        out.add_clause(clause)
    for v in shared:
        out.add_clause((-v, mapping[v]))
        out.add_clause((v, -mapping[v]))
    out.add_unit(y)
    out.add_unit(-mapping[y])
    return out


def is_uniquely_defined(cnf, y, dependency_vars, deadline=None,
                        conflict_budget=None, rng=None):
    """Padoa check: is ``y`` uniquely defined by ``dependency_vars``?

    Returns ``True``/``False``, or ``None`` if the budget ran out.
    """
    formula = _two_copy_formula(cnf, sorted(dependency_vars), y)
    solver = Solver(formula, rng=rng)
    status = solver.solve(deadline=deadline, conflict_budget=conflict_budget)
    if status == UNSAT:
        return True
    if status == SAT:
        return False
    return None


def extract_definition(cnf, y, dependency_vars, max_table_bits=12,
                       deadline=None, conflict_budget=None, rng=None):
    """Truth-table definition of ``y`` over ``dependency_vars``.

    Assumes unique definability (call :func:`is_uniquely_defined` first).
    For each assignment α of the dependency set, one SAT call decides
    whether ``ϕ ∧ (H ↔ α) ∧ y`` is satisfiable; if yes the forced value is
    1, otherwise 0 (rows where ϕ itself is unsatisfiable are don't-cares
    mapped to 0).  Returns a :class:`~repro.formula.boolfunc.BoolExpr`, or
    ``None`` when ``|H| > max_table_bits``.
    """
    deps = sorted(dependency_vars)
    if len(deps) > max_table_bits:
        return None
    solver = Solver(cnf, rng=rng)
    minterms = []
    for row in range(1 << len(deps)):
        if deadline is not None:
            deadline.check()
        assumptions = []
        for i, v in enumerate(deps):
            bit = (row >> i) & 1
            assumptions.append(v if bit else -v)
        status = solver.solve(assumptions=assumptions + [y],
                              deadline=deadline,
                              conflict_budget=conflict_budget)
        if status == SAT:
            minterms.append(bf.and_(*[bf.lit(l) for l in assumptions]))
        elif status != UNSAT:
            raise ResourceBudgetExceeded("definition extraction budget")
    return bf.or_(*minterms)


def extract_all_definitions(cnf, targets, max_table_bits=12, deadline=None,
                            conflict_budget=None, rng=None):
    """Find and extract definitions for every target that has one.

    ``targets`` is ``{y: dependency_vars}``.  Returns ``{y: BoolExpr}``
    for the variables that are uniquely defined *and* small enough to
    tabulate.  Budget exhaustion on one target skips it rather than
    aborting the rest.
    """
    found = {}
    for y, deps in targets.items():
        try:
            unique = is_uniquely_defined(cnf, y, deps, deadline=deadline,
                                         conflict_budget=conflict_budget,
                                         rng=rng)
            if unique:
                expr = extract_definition(cnf, y, deps,
                                          max_table_bits=max_table_bits,
                                          deadline=deadline,
                                          conflict_budget=conflict_budget,
                                          rng=rng)
                if expr is not None:
                    found[y] = expr
        except ResourceBudgetExceeded:
            continue
    return found
