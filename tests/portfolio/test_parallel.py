"""Tests for the process-parallel campaign subsystem."""

import os
import time

import pytest

from repro.core.result import Status, SynthesisResult
from repro.dqbf.instance import DQBFInstance
from repro.formula import boolfunc as bf
from repro.formula.cnf import CNF
from repro.portfolio.parallel import (
    ENGINE_SPECS,
    PipelineEngineSpec,
    derive_job_seed,
    engine_names,
    make_engine,
    run_campaign,
)
from repro.utils.errors import ReproError


def tiny_instance(name):
    cnf = CNF([[-2, 1], [2, -1]])
    return DQBFInstance([1], {2: [1]}, cnf, name=name)


class GoodEngine:
    name = "good"

    def run(self, instance, timeout=None):
        return SynthesisResult(Status.SYNTHESIZED,
                               functions={2: bf.var(1)},
                               stats={"wall_time": 0.01})


class HangingEngine:
    """Ignores its deadline — only the parent-side kill can stop it."""

    name = "hanging"

    def run(self, instance, timeout=None):
        time.sleep(3600)


class CrashingEngine:
    """Dies without reporting (simulates a segfault/OOM kill)."""

    name = "crashing"

    def run(self, instance, timeout=None):
        os._exit(3)


class RaisingEngine:
    name = "raising"

    def run(self, instance, timeout=None):
        raise ValueError("engine bug")


class TestRegistry:
    def test_all_engines_buildable(self):
        for name in engine_names():
            engine = make_engine(name, seed=1)
            # records use the registry name; the engine's own label may
            # be longer (e.g. skolem -> "skolem-composition")
            assert engine.name.startswith(name)
            assert callable(engine.run)

    def test_registry_covers_cli_choices(self):
        from repro.sat.backend import backend_available

        expected = {"manthan3", "manthan3-fresh", "manthan3-rowwise",
                    "manthan3-nopre", "manthan3-noselfsub",
                    "manthan3-emulated", "expansion", "pedant", "skolem",
                    "bdd"}
        # The PySAT engine registers only where python-sat is installed,
        # so engine_names() never advertises an unconstructible engine.
        if backend_available("pysat"):
            expected.add("manthan3-pysat")
        assert set(ENGINE_SPECS) == expected

    def test_pipeline_specs_are_declarative(self):
        """Manthan3 variants are data — overrides + phase list — and
        build engines that carry the spec's name."""
        spec = ENGINE_SPECS["manthan3-fresh"]
        assert isinstance(spec, PipelineEngineSpec)
        assert spec.overrides == {"incremental": False}
        assert spec.phases is None          # default phase list
        engine = spec.build(seed=7)
        assert engine.name == "manthan3-fresh"
        assert engine.config.incremental is False
        assert engine.config.seed == 7

    def test_unknown_engine_raises(self):
        with pytest.raises(ReproError):
            make_engine("no-such-engine")
        with pytest.raises(ReproError):
            run_campaign([tiny_instance("a")], ["no-such-engine"])


class TestJobSeeds:
    def test_deterministic(self):
        assert derive_job_seed(3, "manthan3", "inst") \
            == derive_job_seed(3, "manthan3", "inst")

    def test_distinct_across_jobs(self):
        seeds = {derive_job_seed(0, e, i)
                 for e in ("manthan3", "expansion")
                 for i in ("a", "b", "c")}
        assert len(seeds) == 6

    def test_none_propagates(self):
        assert derive_job_seed(None, "manthan3", "inst") is None


class TestPoolScheduling:
    def test_all_pairs_recorded(self):
        instances = [tiny_instance(chr(ord("a") + k)) for k in range(5)]
        table = run_campaign(instances, [GoodEngine()], timeout=10,
                             jobs=3)
        assert len(table.records) == 5
        assert table.solved_instances("good") == {"a", "b", "c", "d", "e"}

    def test_canonical_record_order(self):
        instances = [tiny_instance("a"), tiny_instance("b")]
        table = run_campaign(instances, [GoodEngine(), HangingEngine()],
                             timeout=0.1, jobs=4, kill_grace=0.3)
        assert [(r.engine, r.instance) for r in table.records] == [
            ("good", "a"), ("hanging", "a"),
            ("good", "b"), ("hanging", "b")]

    def test_hung_worker_killed(self):
        table = run_campaign([tiny_instance("a")], [HangingEngine()],
                             timeout=0.2, jobs=2, kill_grace=0.3)
        record = table.record_for("hanging", "a")
        assert record.status == Status.TIMEOUT
        assert record.stats.get("killed") is True
        assert "killed" in record.reason

    def test_crashed_worker_reported(self):
        table = run_campaign([tiny_instance("a")], [CrashingEngine()],
                             timeout=5, jobs=2)
        record = table.record_for("crashing", "a")
        assert record.status == Status.UNKNOWN
        assert "exited" in record.reason
        assert not record.solved

    def test_raising_engine_reported(self):
        table = run_campaign([tiny_instance("a")], [RaisingEngine()],
                             timeout=5, jobs=2)
        record = table.record_for("raising", "a")
        assert record.status == Status.UNKNOWN
        assert "engine bug" in record.reason

    def test_one_bad_job_does_not_sink_the_pool(self):
        instances = [tiny_instance("a"), tiny_instance("b")]
        table = run_campaign(instances,
                             [GoodEngine(), CrashingEngine()],
                             timeout=5, jobs=2)
        assert table.solved_instances("good") == {"a", "b"}
        assert table.solved_instances("crashing") == set()

    def test_progress_fires_per_executed_run(self):
        seen = []
        run_campaign([tiny_instance("a"), tiny_instance("b")],
                     [GoodEngine()], timeout=10, jobs=2,
                     progress=seen.append)
        assert sorted(r.instance for r in seen) == ["a", "b"]


class TestParallelSequentialEquivalence:
    """The acceptance property: jobs=N reproduces jobs=1 exactly."""

    @pytest.fixture(scope="class")
    def suite(self):
        from repro.benchgen import build_suite

        return build_suite("smoke", seed=1)[:4]

    def test_statuses_and_solved_sets_match(self, suite):
        engines = ["manthan3", "expansion"]
        sequential = run_campaign(suite, engines, timeout=30, jobs=1,
                                  seed=7)
        parallel = run_campaign(suite, engines, timeout=30, jobs=4,
                                seed=7)
        assert [(r.engine, r.instance, r.status, r.certified)
                for r in sequential.records] \
            == [(r.engine, r.instance, r.status, r.certified)
                for r in parallel.records]
        for engine in engines:
            assert sequential.solved_instances(engine) \
                == parallel.solved_instances(engine)

    def test_store_round_trip_preserves_solved_sets(self, suite,
                                                    tmp_path):
        from repro.portfolio import CampaignStore

        store = CampaignStore(str(tmp_path / "c.jsonl"))
        engines = ["expansion"]
        table = run_campaign(suite, engines, timeout=30, jobs=2,
                             seed=7, store=store)
        loaded = store.load()
        assert loaded.timeout == 30
        assert loaded.solved_instances("expansion") \
            == table.solved_instances("expansion")
        assert {(r.engine, r.instance, r.status)
                for r in loaded.records} \
            == {(r.engine, r.instance, r.status)
                for r in table.records}


class TestWorkerStamp:
    """Every run record — serial or pool — attributes its executing
    worker (``stats["worker"] = {"id", "host"}``), store round-tripped,
    so merged multi-worker campaigns stay attributable per record."""

    def test_serial_records_carry_worker_identity(self):
        table = run_campaign([tiny_instance("a")], ["expansion"],
                             timeout=10, jobs=1, seed=7)
        worker = table.records[0].stats["worker"]
        assert worker["host"]
        assert worker["id"].endswith("-%d" % os.getpid())

    def test_pool_records_carry_the_child_pid(self):
        table = run_campaign([tiny_instance("a"), tiny_instance("b")],
                             ["expansion"], timeout=10, jobs=2, seed=7)
        for record in table.records:
            worker = record.stats["worker"]
            assert worker["host"]
            # stamped inside the forked worker, not the parent
            assert not worker["id"].endswith("-%d" % os.getpid())

    def test_stamp_round_trips_the_store(self, tmp_path):
        from repro.portfolio import CampaignStore

        store = CampaignStore(str(tmp_path / "c.jsonl"))
        run_campaign([tiny_instance("a")], ["expansion"], timeout=10,
                     seed=7, store=store)
        loaded = store.load()
        assert loaded.records[0].stats["worker"]["id"]

    def test_existing_stamp_is_kept(self):
        from repro.portfolio.parallel import stamp_worker_identity
        from repro.portfolio.runner import RunRecord

        record = RunRecord("e", "i", Status.UNKNOWN, 0.0,
                           stats={"worker": {"id": "w1", "host": "h"}})
        stamp_worker_identity(record, "other")
        assert record.stats["worker"]["id"] == "w1"
