"""Wall-clock helpers: stopwatches and cooperative deadlines.

The synthesis engines are long-running CEGIS loops; they poll a
:class:`Deadline` at loop boundaries and unwind with
:class:`~repro.utils.errors.ResourceBudgetExceeded` when it expires, which
the portfolio runner converts into a ``TIMEOUT`` verdict.
"""

import time

from repro.utils.errors import ResourceBudgetExceeded


class Stopwatch:
    """Accumulating wall-clock stopwatch.

    >>> sw = Stopwatch().start()
    >>> _ = sw.stop()
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._started_at = None

    def start(self):
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self):
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    @property
    def running(self):
        return self._started_at is not None

    def __enter__(self):
        return self.start()

    def __exit__(self, *_exc):
        self.stop()
        return False


class Deadline:
    """A cooperative wall-clock deadline.

    ``Deadline(None)`` never expires; ``Deadline(seconds)`` expires that many
    seconds after construction.
    """

    def __init__(self, seconds=None):
        self.seconds = seconds
        self._expiry = None if seconds is None else time.perf_counter() + seconds

    def expired(self):
        return self._expiry is not None and time.perf_counter() >= self._expiry

    def remaining(self):
        """Seconds left, or ``None`` for an unbounded deadline."""
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - time.perf_counter())

    def sub(self, seconds):
        """A child deadline: ``seconds`` from now, capped by this one.

        The staged pipeline carves per-phase sub-budgets out of the
        run's global deadline with this; the child can only be *tighter*
        than its parent, so honoring the child always honors the parent.
        """
        child = Deadline(seconds)
        if self._expiry is not None and (child._expiry is None
                                         or self._expiry < child._expiry):
            child._expiry = self._expiry
            child.seconds = self.seconds
        return child

    def check(self):
        """Raise :class:`ResourceBudgetExceeded` if the deadline passed."""
        if self.expired():
            raise ResourceBudgetExceeded(
                "wall-clock deadline of %.3fs exceeded" % self.seconds,
                budget=self.seconds,
            )
