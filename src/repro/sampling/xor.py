"""XOR (parity) constraints for hash-based sampling.

A random XOR over a variable set splits the solution space into two
roughly equal cells; stacking ``k`` of them isolates a ``2^-k`` fraction.
Sampling inside the cell and discarding the hash variables approximates
uniform sampling with pairwise-independence guarantees (the UniGen
family).  The Manthan3 pipeline does not require this strength — it is
provided as the documented "stronger uniformity" option and exercised by
property tests.
"""


def add_parity_constraint(cnf, variables, parity):
    """Add CNF clauses enforcing ``XOR(variables) = parity``.

    Uses a linear chain of fresh variables: ``c_i ↔ c_{i-1} ⊕ v_i``, so
    clause count stays linear in ``len(variables)``.
    """
    variables = list(variables)
    if not variables:
        if parity:  # XOR() = 0, so requiring 1 is a contradiction
            cnf.add_clause(())
        return
    acc = variables[0]
    for v in variables[1:]:
        nxt = cnf.fresh_var()
        # nxt ↔ acc ⊕ v
        cnf.add_clause((-nxt, acc, v))
        cnf.add_clause((-nxt, -acc, -v))
        cnf.add_clause((nxt, -acc, v))
        cnf.add_clause((nxt, acc, -v))
        acc = nxt
    cnf.add_unit(acc if parity else -acc)


def random_xor_constraints(cnf, variables, count, rng):
    """Conjoin ``count`` random XORs over ``variables`` (density 1/2).

    Mutates ``cnf`` in place and returns it for chaining.
    """
    variables = list(variables)
    for _ in range(count):
        chosen = [v for v in variables if rng.random() < 0.5]
        add_parity_constraint(cnf, chosen, rng.random() < 0.5)
    return cnf
