"""``FindOrder`` (Algorithm 1, line 8) and final substitution (line 19).

The dependency bookkeeping ``D`` induces a partial order on Y; a valid
candidate vector admits a linear extension where every variable precedes
the variables it depends on (the paper's example: ``f2 = y1`` yields
``Order = (…, y2, …, y1)``).  Substitution then walks the order from the
back, composing each candidate with the already-final functions of later
variables, so the returned vector mentions only universal variables.
"""

import networkx as nx

from repro.utils.errors import SolverError


def run_find_order(ctx):
    """Pipeline phase entry: (re)compute the total order from the
    context's dependency tracker.

    Reaching this phase without a tracker means the learn phase was
    truncated by a sub-budget: there is no candidate vector to order,
    so the run finishes as TIMEOUT (carrying whatever preprocessing
    fixed as the anytime partial).
    """
    from repro.core.context import Finish
    from repro.core.result import Status

    if ctx.tracker is None:
        return Finish(Status.TIMEOUT,
                      reason="learning truncated before a candidate "
                             "vector was available")
    ctx.order = find_order(ctx.instance, ctx.tracker)


def find_order(instance, tracker):
    """Topological total order: dependers before their dependees."""
    graph = nx.DiGraph()
    graph.add_nodes_from(instance.existentials)
    for depender, dependee in tracker.edges():
        graph.add_edge(depender, dependee)
    try:
        order = list(nx.lexicographical_topological_sort(graph))
    except nx.NetworkXUnfeasible:
        raise SolverError("candidate dependencies are cyclic — "
                          "DependencyTracker invariant broken")
    return order


def order_index(order):
    """``{y: position}`` lookup for repair's Ŷ computation."""
    return {y: i for i, y in enumerate(order)}


def ground_vector(instance, functions):
    """Substitute away inter-existential references in a function vector.

    Computes the reference DAG from the supports themselves (no tracker
    needed) and composes bottom-up; raises :class:`SolverError` on a
    cyclic vector.  Used by engines whose intermediate functions mention
    other existentials (definition DAGs in the Pedant baseline).
    """
    y_set = set(instance.existentials)
    graph = nx.DiGraph()
    graph.add_nodes_from(instance.existentials)
    for y, expr in functions.items():
        for ref in expr.support() & y_set:
            graph.add_edge(y, ref)
    try:
        order = list(nx.lexicographical_topological_sort(graph))
    except nx.NetworkXUnfeasible:
        raise SolverError("function vector references are cyclic")
    return substitute_candidates(instance, functions, order)


def substitute_candidates(instance, candidates, order):
    """Algorithm 1, line 19: expand Y-references bottom-up.

    Returns ``{y: BoolExpr}`` where every function's support is a subset
    of its Henkin dependency set; raises :class:`SolverError` if a
    candidate still mentions an out-of-dependency variable afterwards
    (which would be an engine bug, not an input error).
    """
    final = {}
    y_set = set(instance.existentials)
    for y in reversed(order):
        expr = candidates[y]
        y_refs = expr.support() & y_set
        if y_refs:
            expr = expr.substitute({ref: final[ref] for ref in y_refs})
        final[y] = expr
        illegal = expr.support() - instance.dependencies[y]
        if illegal:
            raise SolverError(
                "substituted candidate for y%d mentions %r outside H"
                % (y, sorted(illegal)))
    return final
