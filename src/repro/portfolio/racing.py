"""Intra-instance engine racing: first decisive finisher wins.

A ``race:<specA>+<specB>`` engine group (see
:func:`repro.portfolio.parallel.resolve_engine_spec`) runs its member
specs *concurrently on the same instance*; the moment one member
reaches a decisive verdict (``SYNTHESIZED`` or ``FALSE``) the others
are cancelled through their
:class:`~repro.api.cancellation.CancellationToken`.  This closes the
engine-vs-VBS gap in wall clock instead of post-hoc analysis: the race
record *is* the virtual-best pick for that instance.

First-winner semantics are safe because cancellation and anytime
partials are first-class: losers unwind cooperatively at their next
phase/repair boundary, return ``CANCELLED`` results that keep their
accumulated stats and best-so-far partial vectors, and the winner's
result is returned **bit-for-bit as its own single run would have
produced it** — each member derives the exact per-(member, instance)
seed a solo campaign would give it, so racing changes wall clock, never
trajectories.  The winner's ``stats["race"]`` records the group, the
per-member outcomes (status, elapsed time, partial sizes — the losers'
anytime progress is retained there), and the wall clock saved versus
the slowest member that ran to a natural finish.

Members run as threads inside one process (or one pool worker).  The
GIL serialises pure-Python compute, so a K-way race costs up to K× the
winner's solo time — still a large win whenever members' solo times
differ by more than K×, which is exactly the VBS regime the paper's
Figure 6 shows.
"""

import threading
import time

from repro.core.result import Status, SynthesisResult

#: Verdicts that end the race: the instance is settled.
DECISIVE = (Status.SYNTHESIZED, Status.FALSE)


class _LinkedToken:
    """A member's cancellation token, also tripped by the caller's.

    Duck-types the ``cancelled`` property the pipeline polls; the
    race's own ``cancel()`` trips only the local latch, while an outer
    token (campaign drain, user cancellation) cancels every member at
    once.
    """

    __slots__ = ("_local", "_outer")

    def __init__(self, outer=None):
        self._local = threading.Event()
        self._outer = outer

    def cancel(self):
        self._local.set()

    @property
    def cancelled(self):
        if self._local.is_set():
            return True
        return self._outer is not None and self._outer.cancelled


class RacingEngine:
    """Run member engine specs concurrently; first decisive wins.

    ``campaign_seed`` is the *campaign* seed, not a derived job seed:
    each member derives its own per-(member, instance) seed with
    :func:`~repro.portfolio.parallel.derive_job_seed`, which is exactly
    the seed that member would receive running solo in the same
    campaign — the winner's trajectory therefore equals its solo run's.
    """

    supports_events = True

    def __init__(self, name, members, campaign_seed=None):
        self.name = name
        self.members = tuple(members)
        self.campaign_seed = campaign_seed

    def run(self, instance, timeout=None, listeners=None, cancel=None):
        from repro.portfolio.parallel import ENGINE_SPECS, \
            derive_job_seed

        start = time.perf_counter()
        lock = threading.Lock()
        tokens = {member: _LinkedToken(cancel)
                  for member in self.members}
        arrivals = []  # (member, result, elapsed) in finish order

        def race_one(member):
            seed = derive_job_seed(self.campaign_seed, member,
                                   instance.name)
            engine = ENGINE_SPECS[member].build(seed)
            try:
                if getattr(engine, "supports_events", False):
                    result = engine.run(instance, timeout=timeout,
                                        listeners=listeners,
                                        cancel=tokens[member])
                else:
                    result = engine.run(instance, timeout=timeout)
            except Exception as exc:  # a crashed member must not
                result = SynthesisResult(  # torpedo the whole race
                    Status.UNKNOWN,
                    reason="race member %s failed: %r" % (member, exc))
            elapsed = time.perf_counter() - start
            with lock:
                first_decisive = (result.status in DECISIVE
                                  and not any(r.status in DECISIVE
                                              for _m, r, _e in arrivals))
                arrivals.append((member, result, elapsed))
                if first_decisive:
                    for other, token in tokens.items():
                        if other != member:
                            token.cancel()

        threads = [threading.Thread(target=race_one, args=(member,),
                                    daemon=True)
                   for member in self.members]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        winner, result, winner_elapsed = next(
            (arrival for arrival in arrivals
             if arrival[1].status in DECISIVE), arrivals[0])

        outcomes = {}
        for member, res, elapsed in arrivals:
            outcomes[member] = {
                "status": res.status,
                "time": round(elapsed, 6),
                "partial_functions": len(res.partial_functions or {})
                if res.status != Status.SYNTHESIZED else 0,
            }
        # Wall clock saved vs the slowest member that ran to a natural
        # finish (cancelled losers never reveal their full solo time).
        natural = [elapsed for _m, res, elapsed in arrivals
                   if res.status != Status.CANCELLED]
        saved = max(natural) - winner_elapsed if natural else 0.0
        result.stats["race"] = {
            "group": self.name,
            "members": list(self.members),
            "winner": winner,
            "winner_time": round(winner_elapsed, 6),
            "outcomes": outcomes,
            "saved": round(max(0.0, saved), 6),
        }
        return result

    def __repr__(self):
        return "RacingEngine(%r)" % (self.name,)
