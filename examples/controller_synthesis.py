#!/usr/bin/env python3
"""Safety controller synthesis under partial observation.

A one-step safety game: state bits S and disturbance bits W are
universally quantified, control bits U are existential, and each control
bit only *observes* a window of the state — exactly a Henkin dependency
restriction.  A Henkin function vector is a memoryless partially-informed
controller enforcing

    Safe(S) → Safe(S′(S, U, W))   for all S, W.

The example synthesizes a controller through the `repro.api` façade,
compiles it to a plain Python callable (`Solution.to_python_callable`)
to simulate concrete plays, and demonstrates that blinding the
controller (narrowing its window) can make the game unwinnable.

Run:  python examples/controller_synthesis.py
"""

import random

from repro.api import Solver, Status
from repro.benchgen import generate_controller_instance


def simulate(instance, controller_fn, controls, plays=6, seed=1):
    """Replay the one-step game with the compiled controller."""
    rng = random.Random(seed)
    universals = instance.universals
    print("  sampled plays (state+disturbance -> controls):")
    for _ in range(plays):
        assignment = {x: bool(rng.getrandbits(1)) for x in universals}
        outputs = controller_fn(assignment)
        env = dict(assignment)
        env.update(outputs)
        spec_holds = instance.matrix.evaluate_partial(env)
        print("    %s -> %s : spec %s" % (
            "".join("1" if assignment[x] else "0" for x in universals),
            {u: int(outputs[u]) for u in controls},
            "holds" if spec_holds is not False else "VIOLATED"))
        assert spec_holds is not False


def main():
    print("=== Observable game (winnable) ===")
    instance = generate_controller_instance(
        num_state=4, num_disturbance=2, num_controls=2,
        observable=True, seed=11)
    controls = [y for y in instance.existentials
                if len(instance.dependencies[y])
                < instance.num_universals]
    print("state+disturbance bits: %d, controls observe: %s" % (
        instance.num_universals,
        {u: sorted(instance.dependencies[u]) for u in controls}))

    # Portfolio style (the paper's §6 message): try the data-driven
    # engine first, fall back to the complete one if it stalls.
    solution = Solver("manthan3").solve(instance, timeout=20)
    print("Manthan3:", solution.status,
          "(%.3f s)" % solution.stats["wall_time"])
    if not solution.synthesized:
        print("falling back to the complete expansion engine ...")
        solution = Solver("expansion").solve(instance, timeout=60)
        print("expansion:", solution.status,
              "(%.3f s)" % solution.stats["wall_time"])
    assert solution.synthesized
    assert solution.certify().valid
    print("controller functions:")
    for u in controls:
        print("  u%d = %s" % (u, solution.functions[u].to_infix()))
    # Compile the whole vector once; simulation then runs plain Python.
    simulate(instance, solution.to_python_callable(), controls)

    print("\n=== Blinded game (observation window narrowed) ===")
    blinded = generate_controller_instance(
        num_state=4, num_disturbance=2, num_controls=2,
        observable=False, seed=11)
    verdict = Solver("expansion").solve(blinded, timeout=60)
    print("complete engine:", verdict.status)
    if verdict.status == Status.FALSE:
        print("no partially-informed controller exists for this plant")
    else:
        print("this seed remains winnable despite blinding "
              "(uncontrolled latches saved it)")


if __name__ == "__main__":
    main()
