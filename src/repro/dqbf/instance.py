"""The DQBF instance data model."""

from repro.formula.cnf import CNF, lit_var
from repro.utils.errors import ReproError


class DQBFInstance:
    """A DQBF ``∀X ∃^{H1} y1 … ∃^{Hm} ym . ϕ(X, Y)``.

    Parameters
    ----------
    universals:
        Iterable of universal variable ids (the set X).
    dependencies:
        ``{y: iterable_of_x}`` — Henkin dependency set per existential.
        The key order (insertion order) fixes the canonical Y ordering.
    matrix:
        :class:`~repro.formula.cnf.CNF` over ``X ∪ Y`` (auxiliary Tseitin
        variables beyond the declared prefix are rejected unless listed as
        existentials).
    name:
        Optional label used in benchmark reports.
    """

    def __init__(self, universals, dependencies, matrix, name=None):
        self.universals = list(dict.fromkeys(int(x) for x in universals))
        self.dependencies = {
            int(y): frozenset(int(x) for x in hs)
            for y, hs in dependencies.items()
        }
        self.matrix = matrix
        self.name = name or "dqbf"
        self._validate()

    def _validate(self):
        x_set = set(self.universals)
        y_set = set(self.dependencies)
        if x_set & y_set:
            raise ReproError("universal and existential variables overlap: %r"
                             % sorted(x_set & y_set))
        for y, deps in self.dependencies.items():
            extra = deps - x_set
            if extra:
                raise ReproError(
                    "existential %d depends on non-universal vars %r"
                    % (y, sorted(extra)))
        declared = x_set | y_set
        undeclared = self.matrix.variables() - declared
        if undeclared:
            raise ReproError(
                "matrix mentions undeclared variables %r "
                "(declare them with 'a'/'e'/'d' lines)" % sorted(undeclared))
        if self.matrix.num_vars < (max(declared) if declared else 0):
            self.matrix.num_vars = max(declared)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def existentials(self):
        """Existential variables in canonical (declaration) order."""
        return list(self.dependencies)

    @property
    def num_universals(self):
        return len(self.universals)

    @property
    def num_existentials(self):
        return len(self.dependencies)

    def henkin_set(self, y):
        """The dependency set ``H_y`` as a frozenset."""
        return self.dependencies[y]

    def is_skolem(self):
        """True when every ``H_i = X`` (plain 2-QBF / Skolem synthesis)."""
        x_set = frozenset(self.universals)
        return all(deps == x_set for deps in self.dependencies.values())

    def dependency_subset_pairs(self):
        """Yield ``(yi, yj)`` with ``Hj ⊂ Hi`` (strict inclusion).

        These are the pairs for which Algorithm 1 (lines 3–5) records that
        ``yi`` may use ``yj`` as a decision-tree feature.
        """
        ys = self.existentials
        for yi in ys:
            hi = self.dependencies[yi]
            for yj in ys:
                if yi != yj and self.dependencies[yj] < hi:
                    yield yi, yj

    def clause_count(self):
        return len(self.matrix)

    def copy(self):
        return DQBFInstance(self.universals, dict(self.dependencies),
                            self.matrix.copy(), name=self.name)

    def stats(self):
        """Summary dict used by the benchmark reports."""
        sizes = [len(d) for d in self.dependencies.values()]
        return {
            "name": self.name,
            "universals": self.num_universals,
            "existentials": self.num_existentials,
            "clauses": len(self.matrix),
            "min_dep": min(sizes) if sizes else 0,
            "max_dep": max(sizes) if sizes else 0,
            "skolem": self.is_skolem(),
        }

    def __repr__(self):
        return "DQBFInstance(%s: |X|=%d, |Y|=%d, clauses=%d)" % (
            self.name, self.num_universals, self.num_existentials,
            len(self.matrix))


def skolem_instance(universals, existentials, matrix, name=None):
    """Build the 2-QBF special case: every ``H_i = X`` (paper §2)."""
    deps = {y: list(universals) for y in existentials}
    return DQBFInstance(universals, deps, matrix, name=name)
