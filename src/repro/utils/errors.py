"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library throws with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ParseError(ReproError):
    """Malformed DIMACS/QDIMACS/DQDIMACS input."""

    def __init__(self, message, line_number=None):
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)
        self.line_number = line_number


class SolverError(ReproError):
    """Internal solver invariant violation (a bug, not a user error)."""


class ResourceBudgetExceeded(ReproError):
    """A configured conflict/time/size budget was exhausted.

    Engines catch this to report ``TIMEOUT`` instead of crashing.
    """

    def __init__(self, message="resource budget exceeded", budget=None):
        super().__init__(message)
        self.budget = budget


class OperationCancelled(ReproError):
    """The caller's :class:`~repro.api.CancellationToken` fired.

    Raised by the synthesis context's cancellation check and handled at
    the pipeline layer, which converts it into a ``CANCELLED`` result
    carrying the run's anytime partials.
    """

    def __init__(self, message="operation cancelled by caller"):
        super().__init__(message)
