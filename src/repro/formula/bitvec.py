"""Bit-parallel simulation substrate: packed sample matrices.

This module plays the role ABC's word-parallel simulation plays in the
paper's implementation, using arbitrary-width Python ints as the machine
words.  A :class:`SampleMatrix` stores a set of assignments *column
major*: one integer per variable where bit ``i`` holds sample ``i``'s
value.  :func:`eval_bitset` then evaluates a whole
:class:`~repro.formula.boolfunc.BoolExpr` DAG on **every** sample at once
— one bitwise operation per DAG node — instead of one tree walk per
assignment.

The learn→repair pipeline is routed through this substrate
(``Manthan3Config.bitparallel``): the decision-tree learner scores
splits with popcounts over matrix columns, and repair evaluates the
candidate vector over the batched counterexample matrix.

Memoization contract: :func:`eval_bitset` takes an optional ``memo``
dict (id(node) → bitset) that may be shared across calls **as long as
no column read by an already-memoized node changes between calls**.
:func:`evaluate_vector_bits` and :func:`refresh_vector_bits` exploit
this: walking ``reversed(order)`` sets each output column exactly once,
*before* any expression that reads it is swept, so one memo serves the
whole vector.
"""

from repro.formula.boolfunc import OP_AND, OP_CONST, OP_NOT, OP_OR, OP_VAR, OP_XOR
from repro.utils.errors import ReproError


class SampleMatrix:
    """A packed, column-major matrix of assignments.

    ``columns[v]`` is an int whose bit ``i`` is sample ``i``'s value of
    variable ``v``.  Rows are appended with :meth:`append` (samples from
    :meth:`~repro.sampling.Sampler.draw`, or counterexample assignments
    during repair); the variable set is fixed by the constructor or by
    the first appended assignment.
    """

    __slots__ = ("columns", "num_rows")

    def __init__(self, variables=()):
        self.columns = {int(v): 0 for v in variables}
        self.num_rows = 0

    @classmethod
    def from_models(cls, models, variables=None):
        """Pack an iterable of ``{var: bool}`` assignments."""
        matrix = cls(variables if variables is not None else ())
        for model in models:
            matrix.append(model)
        return matrix

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def append(self, assignment):
        """Add one row; returns its row index.

        The first row of a matrix built without explicit variables fixes
        the column set.  Later rows must assign every column (missing
        variables raise ``KeyError`` — silent zero-fill would corrupt
        the learner's labels).
        """
        if not self.columns and self.num_rows == 0:
            self.columns = {int(v): 0 for v in assignment}
        row = self.num_rows
        bit = 1 << row
        columns = self.columns
        for v in columns:
            if assignment[v]:
                columns[v] |= bit
        self.num_rows = row + 1
        return row

    def copy(self):
        """Shallow copy (columns dict is copied; ints are immutable)."""
        dup = SampleMatrix()
        dup.columns = dict(self.columns)
        dup.num_rows = self.num_rows
        return dup

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def mask(self):
        """All-rows mask ``(1 << num_rows) - 1``."""
        return (1 << self.num_rows) - 1

    def column(self, v):
        """The packed column of variable ``v``."""
        return self.columns[v]

    def row(self, i):
        """Row ``i`` as a ``{var: bool}`` assignment."""
        if not 0 <= i < self.num_rows:
            raise ReproError("row %d out of range (%d rows)"
                             % (i, self.num_rows))
        return {v: bool((bits >> i) & 1) for v, bits in self.columns.items()}

    def rows(self):
        """All rows as assignment dicts (dict-path interop)."""
        return [self.row(i) for i in range(self.num_rows)]

    def __len__(self):
        return self.num_rows

    def __repr__(self):
        return "SampleMatrix(%d vars x %d rows)" % (len(self.columns),
                                                    self.num_rows)


def eval_bitset(expr, matrix, memo=None):
    """Evaluate ``expr`` on every row of ``matrix`` in one DAG sweep.

    Returns an int whose bit ``i`` is ``expr.evaluate(matrix.row(i))``.
    Each distinct DAG node costs one bitwise operation over the packed
    width; shared nodes are computed once via ``memo`` (which callers may
    pass in to share across expressions — see the module docstring for
    the validity contract).
    """
    mask = matrix.mask
    columns = matrix.columns
    if memo is None:
        memo = {}
    stack = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in memo:
            continue
        op = node.op
        if op == OP_CONST:
            memo[key] = mask if node.payload else 0
        elif op == OP_VAR:
            memo[key] = columns[node.payload]
        elif not expanded:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
        else:
            children = node.children
            if op == OP_NOT:
                memo[key] = mask ^ memo[id(children[0])]
            elif op == OP_AND:
                acc = mask
                for child in children:
                    acc &= memo[id(child)]
                memo[key] = acc
            elif op == OP_OR:
                acc = 0
                for child in children:
                    acc |= memo[id(child)]
                memo[key] = acc
            elif op == OP_XOR:
                acc = 0
                for child in children:
                    acc ^= memo[id(child)]
                memo[key] = acc
            else:  # pragma: no cover - unreachable by construction
                raise ReproError("unknown op %r" % op)
    return memo[id(expr)]


def evaluate_vector_bits(candidates, order, matrix):
    """Candidate output bitsets on every row of ``matrix`` at once.

    The packed analogue of :func:`repro.core.repair.evaluate_vector`:
    walks ``reversed(order)`` so each candidate reads the already-packed
    outputs of the variables it depends on.  Returns ``{y: bitset}``.
    ``matrix`` itself is untouched (the walk runs on a scratch copy).
    """
    scratch = matrix.copy()
    columns = scratch.columns
    memo = {}
    for y in reversed(order):
        columns[y] = eval_bitset(candidates[y], scratch, memo)
    return {y: columns[y] for y in order}


def refresh_vector_bits(candidates, order, outputs, matrix, yk):
    """Output bitsets after only ``candidates[yk]`` changed.

    Packed analogue of :func:`repro.core.repair.refresh_vector`: a
    candidate reads only the outputs of variables *later* in ``order``,
    so a repair of ``yk`` can change nothing after it — re-sweeping
    ``yk`` and the positions before it (against the existing bitsets of
    the rest) reproduces :func:`evaluate_vector_bits` exactly.
    """
    scratch = matrix.copy()
    columns = scratch.columns
    columns.update(outputs)
    memo = {}
    for i in range(order.index(yk), -1, -1):
        y = order[i]
        columns[y] = eval_bitset(candidates[y], scratch, memo)
    return {y: columns[y] for y in order}
