"""Independent Henkin-certificate checking.

Lemma 1 (paper §5): ``f`` is a Henkin function vector iff
``¬ϕ(X,Y) ∧ (Y ↔ f)`` is UNSAT.  The checker additionally enforces the
*syntactic* side condition that each ``f_i`` only mentions variables from
``H_i`` — engines must deliver functions already substituted down to the
dependency sets (Algorithm 1, line 19).

This module is deliberately independent of the engines: it rebuilds the
verification formula from scratch so that engine bugs cannot certify
themselves.
"""

from repro.formula.cnf import CNF
from repro.formula.tseitin import TseitinEncoder, negated_cnf_expr
from repro.sat.solver import Solver, SAT, UNSAT


class CertificateResult:
    """Outcome of a certificate check.

    ``valid`` is True iff the vector is a Henkin function vector.  On
    failure, ``reason`` explains why and — for semantic failures —
    ``counterexample`` holds an X-assignment under which the functions
    violate ϕ.
    """

    def __init__(self, valid, reason="", counterexample=None):
        self.valid = valid
        self.reason = reason
        self.counterexample = counterexample

    def __bool__(self):
        return self.valid

    def __repr__(self):
        return "CertificateResult(valid=%r, reason=%r)" % (self.valid,
                                                           self.reason)


def check_henkin_vector(instance, functions, deadline=None,
                        conflict_budget=None, rng=None):
    """Check a claimed Henkin vector against a DQBF instance.

    Parameters
    ----------
    instance:
        :class:`~repro.dqbf.instance.DQBFInstance`.
    functions:
        ``{y: BoolExpr}`` — one function per existential of the instance.
    """
    missing = [y for y in instance.existentials if y not in functions]
    if missing:
        return CertificateResult(False, "missing functions for %r" % missing)

    for y in instance.existentials:
        support = functions[y].support()
        illegal = support - instance.dependencies[y]
        if illegal:
            return CertificateResult(
                False,
                "f_%d mentions %r outside its dependency set" %
                (y, sorted(illegal)))

    cnf, y_lits = encode_verification_formula(instance, functions)
    solver = Solver(cnf, rng=rng)
    status = solver.solve(deadline=deadline, conflict_budget=conflict_budget)
    if status == UNSAT:
        return CertificateResult(True)
    if status == SAT:
        cex = {x: solver.model[x] for x in instance.universals}
        return CertificateResult(
            False, "functions violate the matrix", counterexample=cex)
    return CertificateResult(False, "verification budget exhausted")


def check_henkin_vector_incremental(instance, functions, deadline=None,
                                    conflict_budget=None, rng=None):
    """:func:`check_henkin_vector`, decomposed for speed.

    ``¬ϕ ∧ (Y ↔ f)`` is satisfiable iff some matrix clause ``c`` has
    ``¬c ∧ (Y ↔ f)`` satisfiable, so instead of one monolithic solve
    over the Tseitin encoding of the full disjunction ``∨ ¬c``, this
    asserts the function definitions once and checks every clause as an
    assumption set (``¬c`` is a conjunction of literals) against one
    persistent solver.  Each check is heavily constrained — all of the
    clause's literals are fixed — and the learnt clauses accumulate
    across checks, the same effect that makes the engines' incremental
    verification sessions cheap.  Verdicts (and counterexamples on
    failure) agree with :func:`check_henkin_vector`; only the wall time
    differs, which is why the solution cache re-certifies hits through
    this path.  ``conflict_budget`` bounds the *total* conflicts across
    all clause checks.
    """
    missing = [y for y in instance.existentials if y not in functions]
    if missing:
        return CertificateResult(False, "missing functions for %r" % missing)

    for y in instance.existentials:
        support = functions[y].support()
        illegal = support - instance.dependencies[y]
        if illegal:
            return CertificateResult(
                False,
                "f_%d mentions %r outside its dependency set" %
                (y, sorted(illegal)))

    cnf = CNF(num_vars=instance.matrix.num_vars)
    encoder = TseitinEncoder(cnf)
    for y in instance.existentials:
        encoder.assert_iff(y, functions[y])
    solver = Solver(cnf, rng=rng)
    for clause in instance.matrix:
        remaining = None
        if conflict_budget is not None:
            remaining = conflict_budget - solver.conflicts
            if remaining <= 0:
                return CertificateResult(False,
                                         "verification budget exhausted")
        status = solver.solve(assumptions=[-lit for lit in clause],
                              deadline=deadline, conflict_budget=remaining)
        if status == SAT:
            cex = {x: solver.model[x] for x in instance.universals}
            return CertificateResult(
                False, "functions violate the matrix", counterexample=cex)
        if status != UNSAT:
            return CertificateResult(False,
                                     "verification budget exhausted")
    return CertificateResult(True)


def encode_verification_formula(instance, functions):
    """Build ``E(X, Y') = ¬ϕ(X, Y') ∧ (Y' ↔ f(X))`` as a CNF.

    Here the matrix's own Y variables play the role of Y′: they are
    constrained to equal the function outputs, and ¬ϕ is Tseitin-encoded
    over them.  Returns ``(cnf, {y: literal_of_y})``.
    """
    cnf = CNF(num_vars=instance.matrix.num_vars)
    encoder = TseitinEncoder(cnf)
    encoder.assert_expr(negated_cnf_expr(instance.matrix))
    y_lits = {}
    for y in instance.existentials:
        encoder.assert_iff(y, functions[y])
        y_lits[y] = y
    return cnf, y_lits


def check_false_witness(instance, x_assignment, deadline=None,
                        conflict_budget=None, rng=None):
    """Validate a falsity witness: ``ϕ ∧ (X ↔ x*)`` must be UNSAT.

    A DQBF is False whenever some universal assignment admits no
    existential extension at all (the Algorithm 1 line-13 case); this
    checks a claimed such assignment independently of any engine.
    """
    missing = [x for x in instance.universals if x not in x_assignment]
    if missing:
        return CertificateResult(False,
                                 "witness misses universals %r" % missing)
    solver = Solver(instance.matrix, rng=rng)
    assumptions = [x if x_assignment[x] else -x
                   for x in instance.universals]
    status = solver.solve(assumptions=assumptions, deadline=deadline,
                          conflict_budget=conflict_budget)
    if status == UNSAT:
        return CertificateResult(True)
    if status == SAT:
        return CertificateResult(False,
                                 "the witness has a Y extension")
    return CertificateResult(False, "witness check budget exhausted")


def counterexample_to_vector(instance, functions, model):
    """Expand a SAT model of the verification formula into the paper's
    counterexample triple ``σ = π[X] + π[Y] + δ[Y′]`` *inputs*.

    Returns ``(x_assignment, y_prime_values)`` where ``y_prime_values`` is
    what the candidate vector currently outputs on ``x_assignment`` —
    exactly the `δ` the repair loop consumes.
    """
    x_assignment = {x: model[x] for x in instance.universals}
    y_prime = {y: functions[y].evaluate(model) for y in instance.existentials}
    return x_assignment, y_prime
