"""Tests for the evaluation report renderer."""

from repro.core.result import Status
from repro.portfolio.report import render_report
from repro.portfolio.runner import ResultTable, RunRecord


def build_table():
    records = []

    def rec(engine, inst, status, t):
        certified = True if status == Status.SYNTHESIZED else None
        records.append(RunRecord(engine, inst, status, t,
                                 certified=certified))

    rec("manthan3", "easy", Status.SYNTHESIZED, 1.0)
    rec("expansion", "easy", Status.SYNTHESIZED, 0.5)
    rec("pedant", "easy", Status.SYNTHESIZED, 2.0)
    rec("manthan3", "m3only", Status.SYNTHESIZED, 3.0)
    rec("expansion", "m3only", Status.UNKNOWN, 0.1)
    rec("pedant", "m3only", Status.TIMEOUT, 10.0)
    rec("manthan3", "hard", Status.UNKNOWN, 0.2)
    rec("expansion", "hard", Status.SYNTHESIZED, 1.5)
    rec("pedant", "hard", Status.SYNTHESIZED, 1.2)
    return ResultTable(records, timeout=10.0)


class TestRenderReport:
    def test_sections_present(self):
        lines = render_report(build_table())
        text = "\n".join(lines)
        for section in ("solved counts", "virtual best synthesizer",
                        "pairwise comparisons", "fastest engine",
                        "unique solves", "unsolved-but-solvable"):
            assert section in text, section

    def test_counts_correct(self):
        text = "\n".join(render_report(build_table()))
        counts_line = next(l for l in text.splitlines()
                           if "manthan3" in l and "/" in l)
        assert "2 / 3" in counts_line
        assert "VBS(all): 3 solved (+1 from manthan3)" in text

    def test_unique_solves_listed(self):
        text = "\n".join(render_report(build_table()))
        assert "m3only" in text

    def test_display_names(self):
        lines = render_report(build_table(),
                              display_names={"expansion": "HQS2*"})
        text = "\n".join(lines)
        assert "HQS2*" in text

    def test_incompleteness_breakdown(self):
        text = "\n".join(render_report(build_table()))
        assert "incompleteness (UNKNOWN): 1" in text

    def test_phase_breakdown_absent_without_phase_stats(self):
        text = "\n".join(render_report(build_table()))
        assert "per-phase time breakdown" not in text

    def test_phase_breakdown_rendered(self):
        table = build_table()
        table.add(RunRecord(
            "manthan3", "staged", Status.SYNTHESIZED, 1.0,
            certified=True,
            stats={"phases": {"sample": 0.25, "learn": 0.50,
                              "verify_repair": 0.25}}))
        text = "\n".join(render_report(table))
        assert "per-phase time breakdown" in text
        assert "learn" in text
        assert "50.0%" in text
