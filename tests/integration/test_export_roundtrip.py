"""Integration: synthesized vectors survive export to AIGER/Verilog.

For several generated instances, synthesize with the complete engine,
export the vector to both interchange formats, and check semantic
equivalence of the exported artifact against the BoolExpr functions on
all (sampled) input assignments.
"""

import itertools
import random
import re

from repro.baselines import ExpansionSynthesizer
from repro.benchgen import generate_pec_instance
from repro.benchgen.xor_chain import generate_xor_chain_instance
from repro.core.result import Status
from repro.formula.aig import AIG, expr_to_aig_literal
from repro.formula.verilog import write_henkin_verilog


def _synthesize(instance):
    result = ExpansionSynthesizer().run(instance, timeout=60)
    assert result.status == Status.SYNTHESIZED
    return result.functions


def _sample_assignments(universals, rng, count=24):
    if len(universals) <= 5:
        for bits in itertools.product([False, True],
                                      repeat=len(universals)):
            yield dict(zip(universals, bits))
        return
    for _ in range(count):
        yield {x: bool(rng.getrandbits(1)) for x in universals}


class TestAigerRoundtrip:
    def test_aig_matches_functions(self):
        rng = random.Random(5)
        for seed in range(3):
            inst = generate_pec_instance(num_inputs=5, num_outputs=2,
                                         num_boxes=1, depth=2, seed=seed)
            functions = _synthesize(inst)
            aig = AIG()
            for x in inst.universals:
                aig.add_input("x%d" % x)
            for y in inst.existentials:
                aig.add_output("y%d" % y,
                               expr_to_aig_literal(aig, functions[y]))
            for env in _sample_assignments(inst.universals, rng):
                named = {"x%d" % x: v for x, v in env.items()}
                out = aig.evaluate(named)
                for y in inst.existentials:
                    assert out["y%d" % y] == functions[y].evaluate(env)


class TestVerilogRoundtrip:
    def _eval_verilog(self, text, inputs):
        env = dict(inputs)
        for match in re.finditer(r"assign (\w+) = (.+);", text):
            name, rhs = match.group(1), match.group(2)
            expr = (rhs.replace("~", " not ")
                    .replace("&", " and ").replace("|", " or ")
                    .replace("1'b1", "True").replace("1'b0", "False"))
            env[name] = bool(eval(expr, {"__builtins__": {}}, dict(env)))
        return env

    def test_verilog_matches_functions(self):
        rng = random.Random(6)
        inst = generate_xor_chain_instance(chain_length=3, window=2,
                                           force_value=True, seed=1)
        functions = _synthesize(inst)
        # equality-chain functions are AND/OR/NOT only (tables), so the
        # micro-interpreter needs no XOR handling
        text = write_henkin_verilog(inst, functions)
        for env in _sample_assignments(inst.universals, rng):
            named = {"x%d" % x: v for x, v in env.items()}
            out = self._eval_verilog(text, named)
            for y in inst.existentials:
                assert out["y%d" % y] == functions[y].evaluate(env)
