"""Tests for the benchmark instance generators.

Each family must produce structurally valid instances with the claimed
quantifier shape, be deterministic under seeds, and — where the family
plants a solution — actually be a True DQBF (checked with the complete
expansion engine on small sizes).
"""

import pytest

from repro.baselines import ExpansionSynthesizer
from repro.benchgen import (
    generate_controller_instance,
    generate_pec_instance,
    generate_planted_instance,
    generate_succinct_sat_instance,
    generate_xor_chain_instance,
)
from repro.benchgen.pec import generate_defined_pec_instance
from repro.benchgen.succinct_sat import generate_random_succinct_sat
from repro.core.result import Status
from repro.dqbf import check_henkin_vector


def _solve_complete(inst):
    return ExpansionSynthesizer().run(inst, timeout=60)


class TestPec:
    def test_structure(self):
        inst = generate_pec_instance(num_inputs=5, num_outputs=2,
                                     num_boxes=2, seed=1)
        assert inst.num_universals == 5
        boxes = [y for y in inst.existentials
                 if len(inst.dependencies[y]) < 5]
        assert len(inst.existentials) > 2  # boxes + Tseitin aux

    def test_deterministic(self):
        a = generate_pec_instance(seed=9)
        b = generate_pec_instance(seed=9)
        assert list(a.matrix) == list(b.matrix)
        assert a.dependencies == b.dependencies

    def test_realizable_instances_are_true(self):
        for seed in range(3):
            inst = generate_pec_instance(num_inputs=5, num_outputs=2,
                                         num_boxes=1, depth=2, seed=seed)
            result = _solve_complete(inst)
            assert result.status == Status.SYNTHESIZED, \
                (seed, result.reason)
            assert check_henkin_vector(inst, result.functions).valid

    def test_unrealizable_flag_changes_instance(self):
        sat = generate_pec_instance(realizable=True, seed=4)
        unsat = generate_pec_instance(realizable=False, seed=4)
        assert sat.dependencies != unsat.dependencies


class TestDefinedPec:
    def test_boxes_match_output_supports(self):
        inst = generate_defined_pec_instance(num_inputs=10,
                                             num_outputs=2,
                                             support_width=5, seed=2)
        narrow = [y for y in inst.existentials
                  if len(inst.dependencies[y]) < 10]
        assert len(narrow) == 2

    def test_true_on_small_sizes(self):
        inst = generate_defined_pec_instance(num_inputs=7, num_outputs=2,
                                             support_width=4, seed=5)
        result = _solve_complete(inst)
        assert result.status == Status.SYNTHESIZED


class TestController:
    def test_structure(self):
        inst = generate_controller_instance(num_state=4,
                                            num_disturbance=2,
                                            num_controls=2, seed=3)
        assert inst.num_universals == 6
        controls = [y for y in inst.existentials
                    if len(inst.dependencies[y]) < 6]
        assert len(controls) >= 1

    def test_observable_instances_are_true(self):
        for seed in range(3):
            inst = generate_controller_instance(num_state=3,
                                                num_disturbance=1,
                                                num_controls=2,
                                                observable=True,
                                                seed=seed)
            result = _solve_complete(inst)
            assert result.status == Status.SYNTHESIZED, (seed,
                                                         result.reason)


class TestSuccinctSat:
    def test_sat_psi_gives_true_dqbf(self):
        # ψ = (z1 ∨ z2) ∧ (¬z1 ∨ z2): satisfiable with z2=1.
        inst = generate_succinct_sat_instance([(1, 2), (-1, 2)], 2)
        result = _solve_complete(inst)
        assert result.status == Status.SYNTHESIZED
        # functions must be constants (single-var dependency twins)
        for y, f in result.functions.items():
            assert f.is_const() or len(f.support()) <= 1

    def test_unsat_psi_gives_false_dqbf(self):
        inst = generate_succinct_sat_instance(
            [(1,), (-1,)], 1)
        result = _solve_complete(inst)
        assert result.status == Status.FALSE

    def test_single_var_dependencies(self):
        inst = generate_random_succinct_sat(num_z=4, seed=8)
        assert all(len(d) == 1 for d in inst.dependencies.values())
        assert inst.num_universals == 8

    def test_rejects_out_of_range_literals(self):
        with pytest.raises(ValueError):
            generate_succinct_sat_instance([(5,)], 2)


class TestPlanted:
    def test_true_by_construction_small(self):
        inst = generate_planted_instance(num_universals=8,
                                         num_existentials=2, dep_width=5,
                                         region_width=2, rules_per_y=3,
                                         seed=11)
        result = _solve_complete(inst)
        assert result.status == Status.SYNTHESIZED

    def test_wide_instances_have_wide_deps(self):
        inst = generate_planted_instance(seed=2)
        widths = {len(d) for d in inst.dependencies.values()}
        assert widths == {18}

    def test_rules_are_implications(self):
        inst = generate_planted_instance(seed=2)
        y_set = set(inst.existentials)
        for clause in inst.matrix:
            y_lits = [l for l in clause if abs(l) in y_set]
            assert len(y_lits) == 1


class TestXorChain:
    def test_always_true(self):
        for kwargs in ({}, {"force_value": True},
                       {"force_value": False}, {"window": 3}):
            inst = generate_xor_chain_instance(chain_length=3, seed=6,
                                               **kwargs)
            result = _solve_complete(inst)
            assert result.status == Status.SYNTHESIZED, kwargs

    def test_no_subset_pairs(self):
        inst = generate_xor_chain_instance(chain_length=5, window=2)
        assert list(inst.dependency_subset_pairs()) == []

    def test_window_geometry(self):
        inst = generate_xor_chain_instance(chain_length=4, window=3)
        sizes = [len(inst.dependencies[y]) for y in inst.existentials]
        assert sizes == [3, 3, 3, 3]
        assert inst.num_universals == 6
