"""Append-only lease log: coordinator-free claiming of campaign jobs.

Elastic campaigns (:mod:`repro.portfolio.elastic`) let any number of
worker processes — potentially on different hosts sharing a directory —
cooperatively execute one (engine × instance) campaign.  There is no
coordinator: all coordination happens through a single shared JSONL
*lease log* next to the campaign store, to which every worker appends
small records:

* ``{"type": "lease", "op": "claim", "job": [engine, instance],
  "worker": id, "ts": t, "deadline": t + duration}`` — a bid for a job;
* ``op: "renew"`` — a heartbeat extending the holder's deadline;
* ``op: "release"`` — a voluntary hand-back (graceful drain);
* ``op: "complete"`` — the job finished and its record is in the
  worker's shard store.

Appends are atomic (one ``O_APPEND`` ``write()`` per line), so the log
is a totally ordered history every worker sees identically, and lease
ownership is a **pure function of the log**: replaying the same log
always resolves to the same owners (:meth:`LeaseLog.resolve`).  The
rules, in file order per job:

* a *claim* wins iff the job is unowned, or the current lease's
  deadline predates the claim's own timestamp (expired → reclaimed), or
  the claimer already holds it (self-reclaim acts as a renewal).
  Simultaneous claims are settled by append order: **first writer
  wins**, and both bidders reach that verdict by re-reading the log.
* a *renew* or *release* only counts from the current holder.
* the first *complete* is final (first-writer-wins, so a stale worker
  whose lease was reclaimed mid-run can finish late without ever
  overwriting the reclaimer's result); later completes are ignored.

Expiry during resolution compares the stored deadline against the
*claimer's* timestamp, never the reader's clock, so resolution is
deterministic; only the decision "may *I* claim this now" uses the
local clock.  Workers must therefore share roughly synchronised clocks
(same host, or NTP across hosts) at lease-duration granularity.

Readers skip undecodable lines instead of failing: a worker SIGKILLed
mid-append can leave a torn line that later appends from live workers
bury mid-file, and a dropped lease record is always safe — at worst the
affected claim never happened and the job is reclaimed after expiry.
Campaign *results* never travel through this log (they live in
per-worker shard stores with the strict
:class:`~repro.portfolio.store.CampaignStore` corruption rules).
"""

import json
import os
import time

from repro.utils.errors import ReproError

#: Seconds a claim stays valid without a renewal.
DEFAULT_LEASE_DURATION = 30.0

#: A holder renews every ``duration / HEARTBEAT_FRACTION`` seconds, so
#: several heartbeats must be missed before the lease expires.
HEARTBEAT_FRACTION = 3.0

FORMAT_VERSION = 1


def lease_log_path(store_path):
    """The lease log that coordinates the campaign at ``store_path``."""
    return store_path + ".leases"


class JobState:
    """Resolved lease state of one ``(engine, instance)`` job.

    ``claims`` counts every successful ownership transfer, and
    ``reclaims`` the subset that took over an *expired* lease (a
    crashed or stalled previous holder).  ``done_by`` is the worker
    whose *first* complete record won.
    """

    __slots__ = ("job", "owner", "deadline", "done", "done_by",
                 "claims", "reclaims")

    def __init__(self, job):
        self.job = job
        self.owner = None
        self.deadline = 0.0
        self.done = False
        self.done_by = None
        self.claims = 0
        self.reclaims = 0

    def held(self, now):
        """Live lease: owned and not past its deadline."""
        return (not self.done and self.owner is not None
                and self.deadline >= now)

    def free(self, now):
        """Claimable: not done, and unowned or expired."""
        return not self.done and (self.owner is None
                                  or self.deadline < now)

    def __repr__(self):
        if self.done:
            return "JobState(%r, done by %r)" % (self.job, self.done_by)
        return "JobState(%r, owner=%r, deadline=%r)" % (
            self.job, self.owner, self.deadline)


class LeaseLog:
    """One shared append-only lease log (see module docstring)."""

    def __init__(self, path):
        self.path = path

    # ------------------------------------------------------------------
    # low-level I/O
    # ------------------------------------------------------------------
    def exists(self):
        try:
            return os.path.getsize(self.path) > 0
        except OSError:
            return False

    def _append(self, data):
        """Append one record atomically.

        ``O_APPEND`` plus a single ``os.write`` keeps concurrent
        appends from different processes (or hosts, on a shared
        filesystem with POSIX append semantics) from interleaving
        bytes: the kernel moves the offset to the end and writes in one
        step, so the log stays a clean sequence of whole lines.
        """
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        line = (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")
        if self._tail_is_torn():
            # A predecessor died mid-append and left no newline; start
            # a fresh line so the torn record only loses itself, not
            # this one too.  The check-then-write race is benign: a
            # concurrent append in between at worst yields an extra
            # blank line, which readers skip.
            line = b"\n" + line
        fd = os.open(self.path,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def _tail_is_torn(self):
        """Whether the log's last byte is missing its newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    def _iter_records(self):
        """Yield parsed records, skipping undecodable lines (see
        module docstring for why skipping is safe here)."""
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        for line in raw.decode("utf-8", "replace").splitlines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue

    # ------------------------------------------------------------------
    # campaign meta
    # ------------------------------------------------------------------
    def read_meta(self):
        """The first ``{"type": "campaign"}`` record, or ``None``."""
        for data in self._iter_records():
            if data.get("type") == "campaign":
                return data
        return None

    def ensure_meta(self, meta):
        """Publish the campaign parameters, or validate against the
        published ones.

        The first campaign record in the log wins (two workers racing
        to initialise both append one; both then validate against the
        earlier).  A mismatch on any shared knob raises — workers with
        different timeouts or seeds would corrupt the campaign's
        comparability, exactly like a mismatched store resume.
        """
        existing = self.read_meta()
        if existing is None:
            header = {"type": "campaign", "version": FORMAT_VERSION}
            header.update(meta)
            self._append(header)
            existing = self.read_meta()
        for key, wanted in meta.items():
            if key in existing and existing[key] != wanted:
                raise ReproError(
                    "cannot join elastic campaign %s: published %s=%r "
                    "differs from requested %r"
                    % (self.path, key, existing[key], wanted))
        return existing

    # ------------------------------------------------------------------
    # lease operations
    # ------------------------------------------------------------------
    def claim(self, job, worker, duration=DEFAULT_LEASE_DURATION,
              now=None):
        """Bid for ``job``; return ``True`` iff this worker now holds
        it.

        The bid is an appended record; the verdict comes from re-reading
        the log (first writer wins), so every concurrent bidder reaches
        the same answer.
        """
        now = time.time() if now is None else now
        self._append({"type": "lease", "op": "claim",
                      "job": list(job), "worker": worker,
                      "ts": round(now, 6),
                      "deadline": round(now + duration, 6)})
        state = self.resolve().get(tuple(job))
        return (state is not None and not state.done
                and state.owner == worker)

    def renew(self, job, worker, duration=DEFAULT_LEASE_DURATION,
              now=None):
        """Heartbeat: extend this worker's lease.  Append-only (cheap);
        a renewal from a non-holder is simply ignored at resolution."""
        now = time.time() if now is None else now
        self._append({"type": "lease", "op": "renew",
                      "job": list(job), "worker": worker,
                      "ts": round(now, 6),
                      "deadline": round(now + duration, 6)})

    def release(self, job, worker, now=None):
        """Hand the job back unfinished (graceful drain)."""
        now = time.time() if now is None else now
        self._append({"type": "lease", "op": "release",
                      "job": list(job), "worker": worker,
                      "ts": round(now, 6)})

    def complete(self, job, worker, now=None):
        """Mark the job done; the first complete in the log is final."""
        now = time.time() if now is None else now
        self._append({"type": "lease", "op": "complete",
                      "job": list(job), "worker": worker,
                      "ts": round(now, 6)})

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self):
        """Fold the log into ``{(engine, instance): JobState}``.

        A pure function of the log contents — no clock involved — so
        every worker (and every replay) resolves identically.
        """
        states = {}
        for rec in self._iter_records():
            if rec.get("type") != "lease":
                continue
            job = rec.get("job")
            op = rec.get("op")
            worker = rec.get("worker")
            if not isinstance(job, list) or len(job) != 2 \
                    or worker is None:
                continue
            key = (job[0], job[1])
            state = states.get(key)
            if state is None:
                state = states[key] = JobState(key)
            if state.done:
                continue
            if op == "claim":
                if state.owner is None:
                    state.owner = worker
                    state.deadline = rec.get("deadline", 0.0)
                    state.claims += 1
                elif state.owner == worker:
                    # self re-claim (e.g. a restarted worker with the
                    # same id): acts as a renewal
                    state.deadline = rec.get("deadline", 0.0)
                elif state.deadline < rec.get("ts", 0.0):
                    state.owner = worker
                    state.deadline = rec.get("deadline", 0.0)
                    state.claims += 1
                    state.reclaims += 1
                # else: the bid lost — current lease is still live
            elif op == "renew":
                if state.owner == worker:
                    state.deadline = rec.get("deadline", 0.0)
            elif op == "release":
                if state.owner == worker:
                    state.owner = None
                    state.deadline = 0.0
            elif op == "complete":
                state.done = True
                state.done_by = worker
                state.owner = None
                state.deadline = 0.0
        return states

    def __repr__(self):
        return "LeaseLog(%r)" % self.path
