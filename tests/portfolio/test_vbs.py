"""Tests for the VBS analytics (the §6 quantities)."""

import pytest

from repro.core.result import Status
from repro.portfolio.runner import ResultTable, RunRecord
from repro.portfolio.vbs import (
    cactus_series,
    fastest_counts,
    scatter_pairs,
    solved_counts,
    unique_solves,
    unsolved_breakdown,
    vbs_times,
    within_slack_of_vbs,
)


@pytest.fixture
def table():
    """Three engines, four instances, mirroring the paper's shape:
    i1 everyone solves, i2 only m3, i3 only baselines, i4 nobody."""
    records = []

    def rec(engine, inst, status, t, certified=None):
        if status == Status.SYNTHESIZED:
            certified = True
        records.append(RunRecord(engine, inst, status, t,
                                 certified=certified))

    rec("m3", "i1", Status.SYNTHESIZED, 2.0)
    rec("hqs", "i1", Status.SYNTHESIZED, 1.0)
    rec("pedant", "i1", Status.SYNTHESIZED, 3.0)
    rec("m3", "i2", Status.SYNTHESIZED, 5.0)
    rec("hqs", "i2", Status.UNKNOWN, 0.1)
    rec("pedant", "i2", Status.TIMEOUT, 10.0)
    rec("m3", "i3", Status.UNKNOWN, 0.5)
    rec("hqs", "i3", Status.SYNTHESIZED, 4.0)
    rec("pedant", "i3", Status.SYNTHESIZED, 6.0)
    rec("m3", "i4", Status.TIMEOUT, 10.0)
    rec("hqs", "i4", Status.TIMEOUT, 10.0)
    rec("pedant", "i4", Status.TIMEOUT, 10.0)
    return ResultTable(records, timeout=10.0)


class TestVbsTimes:
    def test_min_over_members(self, table):
        times = vbs_times(table, ["m3", "hqs", "pedant"])
        assert times == {"i1": 1.0, "i2": 5.0, "i3": 4.0}

    def test_subset_portfolio(self, table):
        times = vbs_times(table, ["hqs", "pedant"])
        assert set(times) == {"i1", "i3"}


class TestCactus:
    def test_sorted_series(self, table):
        series = cactus_series(table, ["m3", "hqs", "pedant"])
        assert series == [1.0, 4.0, 5.0]

    def test_vbs_improvement_visible(self, table):
        """The Figure 6 statement: VBS+Manthan3 solves strictly more."""
        without = cactus_series(table, ["hqs", "pedant"])
        with_m3 = cactus_series(table, ["m3", "hqs", "pedant"])
        assert len(with_m3) > len(without)


class TestScatter:
    def test_pairs_use_timeout_for_unsolved(self, table):
        pairs = {p[0]: (p[1], p[2])
                 for p in scatter_pairs(table, "m3", "hqs")}
        assert pairs["i2"] == (5.0, 10.0)
        assert pairs["i3"] == (10.0, 4.0)
        assert pairs["i4"] == (10.0, 10.0)

    def test_vbs_side(self, table):
        pairs = {p[0]: (p[1], p[2])
                 for p in scatter_pairs(table, "m3", ["hqs", "pedant"])}
        assert pairs["i1"] == (2.0, 1.0)


class TestCounts:
    def test_solved_counts(self, table):
        assert solved_counts(table) == {"m3": 2, "hqs": 2, "pedant": 2}

    def test_unique_solves(self, table):
        assert unique_solves(table, "m3", ["hqs", "pedant"]) == ["i2"]
        assert unique_solves(table, "hqs", ["m3"]) == ["i3"]

    def test_fastest_counts(self, table):
        counts = fastest_counts(table)
        assert counts["hqs"] == 2   # i1 and i3
        assert counts["m3"] == 1    # i2
        assert counts["pedant"] == 0

    def test_within_slack(self, table):
        hits = within_slack_of_vbs(table, "m3", ["hqs", "pedant"],
                                   slack=1.0)
        assert "i1" in hits   # 2.0 ≤ 1.0 + 1.0
        assert "i2" in hits   # VBS(others) unsolved ⇒ trivially within

    def test_unsolved_breakdown(self, table):
        breakdown = unsolved_breakdown(table, "m3")
        assert breakdown["UNKNOWN"] == ["i3"]
        assert breakdown["TIMEOUT"] == ["i4"]
