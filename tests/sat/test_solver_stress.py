"""Stress and robustness tests for the CDCL solver."""

import random

from repro.formula.cnf import CNF
from repro.sampling.xor import add_parity_constraint
from repro.sat.solver import Solver, SAT, UNSAT

from tests.conftest import brute_force_satisfiable, random_cnf


class TestXorChains:
    """Parity formulas exercise long implication chains and learning."""

    def test_consistent_parity_system_sat(self):
        rng = random.Random(3)
        cnf = CNF(num_vars=14)
        # planted solution defines consistent parities
        planted = {v: rng.random() < 0.5 for v in range(1, 15)}
        for _ in range(10):
            chosen = [v for v in range(1, 15) if rng.random() < 0.5]
            parity = sum(planted[v] for v in chosen) % 2 == 1
            add_parity_constraint(cnf, chosen, parity)
        solver = Solver(cnf, rng=1)
        assert solver.solve() == SAT
        # planted assignment satisfies; found model must too
        assert cnf.evaluate(solver.model)

    def test_contradictory_parity_system_unsat(self):
        cnf = CNF(num_vars=6)
        variables = [1, 2, 3, 4, 5, 6]
        add_parity_constraint(cnf, variables, True)
        add_parity_constraint(cnf, variables, False)
        assert Solver(cnf).solve() == UNSAT


class TestIncrementalStress:
    def test_many_assumption_rounds(self):
        rng = random.Random(9)
        cnf = random_cnf(rng, num_vars=10, num_clauses=30)
        solver = Solver(cnf, rng=0)
        baseline = solver.solve()
        for round_no in range(100):
            assumptions = [rng.choice([1, -1]) * rng.randint(1, 10)
                           for _ in range(3)]
            status = solver.solve(assumptions=assumptions)
            assert status in (SAT, UNSAT)
            if status == SAT:
                assert cnf.evaluate(solver.model)
                for a in set(assumptions):
                    if -a not in assumptions:
                        value = solver.model[abs(a)]
                        assert value == (a > 0)
        # the solver still answers the unconditional query correctly
        assert solver.solve() == baseline

    def test_growing_formula(self):
        solver = Solver(CNF(num_vars=8))
        rng = random.Random(4)
        reference = CNF(num_vars=8)
        status = SAT
        for _ in range(60):
            clause = [rng.choice([1, -1]) * rng.randint(1, 8)
                      for _ in range(rng.randint(1, 3))]
            reference.add_clause(clause)
            solver.add_clause(clause)
            status = solver.solve()
            expected = brute_force_satisfiable(reference)
            assert (status == SAT) == expected
            if status == UNSAT:
                break
        # once UNSAT, it must stay UNSAT
        if status == UNSAT:
            solver.add_clause([1])
            assert solver.solve() == UNSAT


class TestWeightedPolarity:
    def _true_fraction(self, weight, rounds=40):
        trues = 0
        for i in range(rounds):
            solver = Solver(CNF(num_vars=1), rng=i,
                            polarity_mode="weighted",
                            polarity_weights={1: weight})
            assert solver.solve() == SAT
            trues += solver.model[1]
        return trues / rounds

    def test_weights_bias_free_variables(self):
        assert self._true_fraction(0.95) > 0.7
        assert self._true_fraction(0.05) < 0.3


class TestLearntClauseManagement:
    def test_reduce_db_does_not_break_correctness(self):
        """Force many conflicts so reduce_db fires, then check result."""
        rng = random.Random(12)
        for trial in range(5):
            cnf = random_cnf(rng, num_vars=9, num_clauses=38)
            expected = brute_force_satisfiable(cnf)
            solver = Solver(cnf, rng=trial)
            # tiny learnt budget: force aggressive reduction
            status = solver.solve()
            assert (status == SAT) == expected
